// Anomaly trace: visualize how the data-analysis module (§3.3) carves one
// streamer's latency series into stable and unstable segments and flags
// glitches and spikes — an ASCII rendition of the paper's Fig. 1.
package main

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"tero/internal/core"
	"tero/internal/geo"
)

func main() {
	t0 := time.Date(2022, 6, 1, 18, 0, 0, 0, time.UTC)
	// A hand-crafted stream: stable 45ms play, a digit-drop glitch (45→5),
	// a genuine two-step congestion spike, and a server change to ~110ms.
	values := []float64{
		45, 46, 45, 44, 45, 46, 45, 45, // stable at 45
		5, 6, // glitch: leading digit eaten by a menu
		45, 44, 46, 45, 45, 46, // stable again
		95, 120, 118, 96, // spike: congestion
		45, 46, 45, 44, 45, 46, 45, 44, // recovery
		110, 111, 109, 112, 110, 111, 110, 109, 112, 110, // server change
	}
	st := core.Stream{
		Streamer: "demo", Game: "League of Legends",
		Location: geo.Location{Country: "United Kingdom"},
	}
	rng := rand.New(rand.NewSource(1))
	for i, v := range values {
		pt := core.Point{T: t0.Add(time.Duration(i) * 5 * time.Minute), Ms: v}
		// The glitched points carry the correct alternative value from the
		// disagreeing third OCR engine (§3.2).
		if v < 10 {
			pt.Alt, pt.HasAlt = 45+rng.Float64(), true
		}
		st.Points = append(st.Points, pt)
	}

	a := core.Analyze([]core.Stream{st}, core.DefaultParams())

	fmt.Println("latency series (one column per 5-minute thumbnail):")
	plot(a)

	fmt.Println("\nsegments:")
	for _, s := range a.Segments {
		stability := "unstable"
		if s.Stable {
			stability = "stable"
		}
		fmt.Printf("  points %2d-%2d  [%3.0f-%3.0f ms]  %-8s  flag=%s\n",
			s.Start, s.End-1, s.Min, s.Max, stability, s.Flag)
	}
	fmt.Println("\nevents:")
	for _, g := range a.Glitches {
		fmt.Printf("  glitch: %d point(s), dropped %.0f ms below the stable level\n", g.Points, g.Drop)
	}
	for _, sp := range a.Spikes {
		fmt.Printf("  spike:  %d point(s), %.0f ms above the stable level\n", sp.Points, sp.Size)
	}
	fmt.Println("\nclusters (per-streamer, §3.3.3):")
	for _, c := range a.Clusters {
		fmt.Printf("  [%3.0f-%3.0f ms] weight %.0f%%\n", c.Min, c.Max, 100*c.Weight)
	}
	fmt.Printf("\nstatic=%v  high-quality=%v  kept %d/%d points\n",
		a.Static, a.HighQuality, a.KeptPoints, a.TotalPoints)
	changes := core.DetectEndpointChanges(a, a.Clusters)
	for _, ch := range changes {
		kind := "possible location change"
		if ch.IsServerChange() {
			kind = "server change"
		}
		fmt.Printf("endpoint change at %s: cluster %d -> %d (%s)\n",
			ch.Time.Format("15:04"), ch.From, ch.To, kind)
	}
}

// plot renders the series with segment flags as a compact ASCII chart.
func plot(a *core.Analysis) {
	pts := a.Streams[0].Points
	maxV := 0.0
	for _, p := range pts {
		if p.Ms > maxV {
			maxV = p.Ms
		}
	}
	const rows = 12
	grid := make([][]rune, rows)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", len(pts)))
	}
	for i, p := range pts {
		r := rows - 1 - int(p.Ms/maxV*float64(rows-1))
		grid[r][i] = glyphFor(a, i)
	}
	for r, row := range grid {
		label := ""
		if r == 0 {
			label = fmt.Sprintf("%3.0f ms", maxV)
		} else if r == rows-1 {
			label = "  0 ms"
		} else {
			label = "      "
		}
		fmt.Printf("%s |%s|\n", label, string(row))
	}
	fmt.Println("        legend: o stable · u unstable-kept  x discarded  G glitch  S spike  C corrected")
}

// glyphFor picks the plot glyph from the point's segment flag.
func glyphFor(a *core.Analysis, idx int) rune {
	for _, s := range a.Segments {
		if idx < s.Start || idx >= s.End {
			continue
		}
		switch s.Flag {
		case core.FlagGlitch:
			return 'G'
		case core.FlagSpike:
			return 'S'
		case core.FlagCorrected:
			return 'C'
		case core.FlagDiscarded:
			return 'x'
		case core.FlagAbsorbed:
			return 'u'
		default:
			if s.Stable {
				return 'o'
			}
			return 'u'
		}
	}
	return '?'
}
