package objstore

import (
	"bytes"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New()
	etag := s.Put("thumbs", "user1/0001.img", []byte("data"), map[string]string{"game": "lol"})
	if etag == "" {
		t.Fatal("empty etag")
	}
	o, err := s.Get("thumbs", "user1/0001.img")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(o.Data, []byte("data")) || o.Meta["game"] != "lol" || o.ETag != etag {
		t.Fatalf("object = %+v", o)
	}
}

func TestGetIsACopy(t *testing.T) {
	s := New()
	s.Put("b", "k", []byte("abc"), nil)
	o, _ := s.Get("b", "k")
	o.Data[0] = 'X'
	o2, _ := s.Get("b", "k")
	if o2.Data[0] != 'a' {
		t.Fatal("Get must return a copy")
	}
}

func TestPutDataIsCopied(t *testing.T) {
	s := New()
	buf := []byte("abc")
	s.Put("b", "k", buf, nil)
	buf[0] = 'X'
	o, _ := s.Get("b", "k")
	if o.Data[0] != 'a' {
		t.Fatal("Put must copy the data")
	}
}

func TestOverwriteChangesETag(t *testing.T) {
	s := New()
	e1 := s.Put("b", "k", []byte("v1"), nil)
	e2 := s.Put("b", "k", []byte("v2"), nil)
	if e1 == e2 {
		t.Fatal("etag should change with content")
	}
	if s.Size("b") != 1 {
		t.Fatal("overwrite must not duplicate")
	}
}

func TestHeadOmitsData(t *testing.T) {
	s := New()
	s.Put("b", "k", []byte("data"), nil)
	h, err := s.Head("b", "k")
	if err != nil || h.Data != nil || h.ETag == "" {
		t.Fatalf("head = %+v, %v", h, err)
	}
	if _, err := s.Head("b", "missing"); err != ErrNotFound {
		t.Fatal("missing head")
	}
}

func TestDeleteAndList(t *testing.T) {
	s := New()
	s.Put("b", "a/1", nil, nil)
	s.Put("b", "a/2", nil, nil)
	s.Put("b", "c/3", nil, nil)
	if got := s.List("b", "a/"); len(got) != 2 || got[0] != "a/1" {
		t.Fatalf("list = %v", got)
	}
	if err := s.Delete("b", "a/1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("b", "a/1"); err != ErrNotFound {
		t.Fatal("double delete")
	}
	if err := s.Delete("nobucket", "x"); err != ErrNotFound {
		t.Fatal("missing bucket delete")
	}
	if s.Size("b") != 2 {
		t.Fatalf("size = %d", s.Size("b"))
	}
}

func TestCreateBucketIdempotent(t *testing.T) {
	s := New()
	s.CreateBucket("b")
	s.Put("b", "k", []byte("v"), nil)
	s.CreateBucket("b")
	if s.Size("b") != 1 {
		t.Fatal("CreateBucket wiped the bucket")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := string(rune('a'+g)) + "key"
				s.Put("b", key, []byte{byte(i)}, nil)
				s.Get("b", key)
				s.List("b", "")
			}
		}(g)
	}
	wg.Wait()
	if s.Size("b") != 8 {
		t.Fatalf("size = %d", s.Size("b"))
	}
}
