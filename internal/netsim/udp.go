package netsim

import "time"

// UDPFlow is an iperf-style constant-bit-rate UDP sender.
type UDPFlow struct {
	sim  *Sim
	out  Receiver
	id   int
	rate float64 // bits per second
	size int     // packet size bytes
	stop time.Duration
	seq  int

	// PacketsSent counts generated packets.
	PacketsSent int
}

// NewUDPFlow creates a CBR flow sending packets of `size` bytes at `rate`
// bits/s into out, from `start` until `stop` (virtual times).
func NewUDPFlow(sim *Sim, id int, out Receiver, rate float64, size int, start, stop time.Duration) *UDPFlow {
	f := &UDPFlow{sim: sim, out: out, id: id, rate: rate, size: size, stop: stop}
	sim.Schedule(start-sim.Now(), f.tick)
	return f
}

func (f *UDPFlow) tick() {
	if f.sim.Now() >= f.stop {
		return
	}
	f.seq++
	f.PacketsSent++
	f.out.Receive(Packet{Size: f.size, Flow: f.id, Seq: f.seq, SentAt: f.sim.Now()})
	interval := time.Duration(float64(f.size*8) / f.rate * float64(time.Second))
	if interval <= 0 {
		interval = time.Microsecond
	}
	f.sim.Schedule(interval, f.tick)
}

// UDPSink counts received packets.
type UDPSink struct {
	Packets int
	Bytes   int64
}

// Receive implements Receiver.
func (s *UDPSink) Receive(p Packet) {
	s.Packets++
	s.Bytes += int64(p.Size)
}
