package kvstore

import (
	"testing"
	"testing/quick"
)

func TestQuickSetGetRoundTrip(t *testing.T) {
	s := New()
	f := func(key, value string) bool {
		s.Set(key, value)
		got, ok := s.Get(key)
		return ok && got == value
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickListFIFO(t *testing.T) {
	// RPush then LPop preserves order for arbitrary values.
	f := func(values []string) bool {
		s := New()
		s.RPush("l", values...)
		for _, want := range values {
			got, ok := s.LPop("l")
			if !ok || got != want {
				return false
			}
		}
		_, ok := s.LPop("l")
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRESPBinaryRoundTrip(t *testing.T) {
	// Arbitrary byte strings survive the wire protocol.
	srv, err := Serve(New(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	f := func(key, value []byte) bool {
		k := "k" + string(key) // non-empty key
		if err := cl.Set(k, string(value)); err != nil {
			return false
		}
		got, ok, err := cl.Get(k)
		return err == nil && ok && got == string(value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHashRoundTrip(t *testing.T) {
	s := New()
	f := func(field, value string) bool {
		s.HSet("h", field, value)
		got, ok := s.HGet("h", field)
		return ok && got == value
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
