package ocr

import (
	"tero/internal/imaging"
)

// Tessera is the strict engine: fixed global threshold, column-projection
// segmentation, tight match tolerance. It misses low-contrast text entirely
// (the fixed threshold swallows it) and refuses noisy characters, which
// yields the highest miss rate of the three, like Tesseract in Table 4.
type Tessera struct {
	// Thr is the fixed binarization threshold.
	Thr uint8
	// Tol is the maximum accepted Hamming distance.
	Tol int
	// Scalar selects the byte-per-pixel reference kernels instead of the
	// bit-packed default. Both paths produce identical Results.
	Scalar bool
}

// NewTessera returns a Tessera engine with default parameters.
func NewTessera() *Tessera { return &Tessera{Thr: 140, Tol: 16} }

// Name implements Engine.
func (t *Tessera) Name() string { return "tessera" }

// Recognize implements Engine.
func (t *Tessera) Recognize(img *imaging.Gray) Result {
	if t.Scalar {
		bin := img.Threshold(t.Thr)
		segs := bin.SegmentColumns(1)
		res := recognizeSegments(bin, segs, t.Tol, 0, 3)
		imaging.Recycle(bin)
		return res
	}
	bin := img.PackGE(t.Thr)
	segs := bin.SegmentColumns(1)
	res := recognizeSegmentsPacked(bin, segs, t.Tol, 0, 3)
	imaging.RecycleBitmap(bin)
	return res
}

// EasyScan is the lenient engine: Otsu binarization (adapts to low
// contrast), connected-component segmentation merged into column groups,
// and a generous match tolerance. It extracts almost everything but
// mis-reads more characters — the EasyOCR profile of Table 4.
type EasyScan struct {
	Tol int
	// Scalar selects the byte-per-pixel reference kernels (see Tessera).
	Scalar bool
}

// NewEasyScan returns an EasyScan engine with default parameters.
func NewEasyScan() *EasyScan { return &EasyScan{Tol: 36} }

// Name implements Engine.
func (e *EasyScan) Name() string { return "easyscan" }

// Recognize implements Engine.
func (e *EasyScan) Recognize(img *imaging.Gray) Result {
	// Adaptive binarization with polarity detection: if the foreground is
	// darker than the background, binarize with text as 255. Polarity is
	// decided from the Otsu histogram alone — the >= thr tail is exactly
	// the foreground count of Threshold(thr) — and the flipped polarity
	// binarizes once with the inverted comparison (p < thr), which equals
	// the old Clone+Invert+re-Threshold without the two extra image passes.
	hist := img.Histogram256()
	thr := imaging.OtsuHistogram(&hist, len(img.Pix))
	inverted := histTail(&hist, thr) > len(img.Pix)/2
	if e.Scalar {
		var bin *imaging.Gray
		if inverted {
			bin = img.ThresholdBelow(thr)
		} else {
			bin = img.Threshold(thr)
		}
		segs := mergeOverlapping(componentColumns(bin.ConnectedComponents(), bin.H))
		res := recognizeSegments(bin, segs, e.Tol, 0, 4)
		imaging.Recycle(bin)
		return res
	}
	var bin *imaging.Bitmap
	if inverted {
		bin = img.PackLE(thr - 1) // OtsuHistogram guarantees thr >= 1
	} else {
		bin = img.PackGE(thr)
	}
	segs := mergeOverlapping(componentColumns(bin.ConnectedComponents(), bin.H))
	res := recognizeSegmentsPacked(bin, segs, e.Tol, 0, 4)
	imaging.RecycleBitmap(bin)
	return res
}

// PaddleRead up-scales and smooths before binarizing, segments by column
// projection with a wider gap, and applies a digit prior — a distinct
// confusion profile (slightly more errors than EasyScan, fewer misses than
// Tessera), matching PaddleOCR's row of Table 4.
type PaddleRead struct {
	Tol       int
	DigitBias int
	// Scalar selects the byte-per-pixel reference kernels (see Tessera).
	Scalar bool
}

// NewPaddleRead returns a PaddleRead engine with default parameters.
func NewPaddleRead() *PaddleRead { return &PaddleRead{Tol: 40, DigitBias: 0} }

// Name implements Engine.
func (p *PaddleRead) Name() string { return "paddleread" }

// Recognize implements Engine.
func (p *PaddleRead) Recognize(img *imaging.Gray) Result {
	var res Result
	if p.Scalar {
		res = p.recognizeScalar(img)
	} else {
		res = p.recognizePacked(img)
	}
	// Report character boxes in the caller's coordinate system (the image
	// was scaled 2× internally).
	for i := range res.Chars {
		b := &res.Chars[i].Box
		b.X0 /= 2
		b.Y0 /= 2
		b.X1 = (b.X1 + 1) / 2
		b.Y1 = (b.Y1 + 1) / 2
	}
	return res
}

// recognizeScalar is the byte-per-pixel reference path.
func (p *PaddleRead) recognizeScalar(img *imaging.Gray) Result {
	up := img.ScaleNearest(2)
	hist := up.Histogram256()
	thr := imaging.OtsuHistogram(&hist, len(up.Pix))
	if histTail(&hist, thr) > len(up.Pix)/2 {
		// Dark-on-light: invert in place (up is private scratch) and rerun
		// Otsu on the reversed histogram — no clone, no re-scan.
		up.Invert()
		rev := reverseHist(&hist)
		thr = imaging.OtsuHistogram(&rev, len(up.Pix))
	}
	bin := up.Threshold(thr)
	segs := bin.SegmentColumns(2)
	res := recognizeSegments(bin, segs, p.Tol, p.DigitBias, 8)
	imaging.Recycle(bin)
	imaging.Recycle(up)
	return res
}

// recognizePacked runs the same pipeline on packed bitmaps. The 2× nearest
// upscale commutes with per-pixel thresholding, and the upscaled image's
// histogram is exactly 4× the original's, so the engine thresholds the
// original directly into packed form and bit-doubles the bitmap — the
// upscaled grayscale is never materialized.
func (p *PaddleRead) recognizePacked(img *imaging.Gray) Result {
	hist := img.Histogram256()
	for i := range hist {
		hist[i] *= 4
	}
	total := 4 * len(img.Pix)
	thr := imaging.OtsuHistogram(&hist, total)
	var small *imaging.Bitmap
	if histTail(&hist, thr) > total/2 {
		rev := reverseHist(&hist)
		thr2 := imaging.OtsuHistogram(&rev, total)
		// Inverted pixel >= thr2 is original pixel <= 255-thr2.
		small = img.PackLE(255 - thr2)
	} else {
		small = img.PackGE(thr)
	}
	bin := small.Upscale2x()
	imaging.RecycleBitmap(small)
	segs := bin.SegmentColumns(2)
	res := recognizeSegmentsPacked(bin, segs, p.Tol, p.DigitBias, 8)
	imaging.RecycleBitmap(bin)
	return res
}

// componentColumns returns one full-height column strip per connected
// component.
func componentColumns(comps []imaging.Component, h int) []imaging.Rect {
	out := make([]imaging.Rect, 0, len(comps))
	for _, c := range comps {
		out = append(out, imaging.Rect{X0: c.Box.X0, Y0: 0, X1: c.Box.X1, Y1: h})
	}
	return out
}

// mergeOverlapping merges column strips whose X ranges overlap (pieces of
// the same character found as separate components).
func mergeOverlapping(rs []imaging.Rect) []imaging.Rect {
	if len(rs) == 0 {
		return rs
	}
	// rs is sorted by X0 (component order). Merge onto a stack.
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.X0 <= last.X1 {
			if r.X1 > last.X1 {
				last.X1 = r.X1
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}
