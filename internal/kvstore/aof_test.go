package kvstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// fingerprint renders the complete live store state — values, hash fields,
// list contents and expiry deadlines — as one deterministic string, so
// recovery and replication tests can assert exact state equality.
func fingerprint(s *Store) string {
	var sb strings.Builder
	keys := s.Keys("")
	sort.Strings(keys)
	for _, k := range keys {
		if v, ok := s.Get(k); ok {
			fmt.Fprintf(&sb, "S %s=%q\n", k, v)
		}
		h := s.HGetAll(k)
		if len(h) > 0 {
			fields := make([]string, 0, len(h))
			for f := range h {
				fields = append(fields, f)
			}
			sort.Strings(fields)
			for _, f := range fields {
				fmt.Fprintf(&sb, "H %s.%s=%q\n", k, f, h[f])
			}
		}
		if l := s.LRange(k, 0, -1); len(l) > 0 {
			fmt.Fprintf(&sb, "L %s=%q\n", k, l)
		}
		s.mu.RLock()
		if d, ok := s.expiry[k]; ok {
			fmt.Fprintf(&sb, "T %s=%d\n", k, d.UnixNano())
		}
		s.mu.RUnlock()
	}
	return sb.String()
}

// scribble applies a representative barrage of every logged command type.
func scribble(s *Store) {
	for i := 0; i < 20; i++ {
		s.Set("str:"+strconv.Itoa(i), strings.Repeat("v", i+1))
	}
	s.SetEx("ttl:short", "gone", time.Hour)
	s.SetEx("ttl:long", "kept", 24*time.Hour)
	s.Set("plain", "overwritten")
	s.Set("plain", "final")
	s.Del("str:3")
	for i := 0; i < 5; i++ {
		s.Incr("counter")
	}
	for i := 0; i < 10; i++ {
		s.HSet("hash", "f"+strconv.Itoa(i), "hv"+strconv.Itoa(i))
	}
	s.HDel("hash", "f0")
	s.HSet("hash2", "only", "x")
	s.HDel("hash2", "only") // drains hash2 entirely
	for i := 0; i < 30; i++ {
		s.RPush("queue", "item"+strconv.Itoa(i))
	}
	s.LPush("queue", "front")
	for i := 0; i < 8; i++ {
		s.LPop("queue")
	}
	s.RPop("queue")
	s.RPush("drained", "a", "b")
	s.LPop("drained")
	s.LPop("drained")
	s.Expire("hash", 48*time.Hour)
	s.Expire("queue", 48*time.Hour)
}

func TestOpenRecoversState(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, PersistOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	scribble(s)
	want := fingerprint(s)
	if want == "" {
		t.Fatal("empty fingerprint — scribble wrote nothing?")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	before := mAofReplayed.Value()
	s2, err := Open(dir, PersistOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := fingerprint(s2); got != want {
		t.Fatalf("recovered state differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if mAofReplayed.Value() == before {
		t.Fatal("replay counter did not advance")
	}
}

func TestRecoveryAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	// Compact aggressively so recovery exercises snapshot load + AOF tail.
	opt := PersistOptions{Fsync: FsyncAlways, CompactEvery: 25}
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	scribble(s)
	want := fingerprint(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Compaction advanced generations and dropped the old files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) != 2 {
		t.Fatalf("want exactly one snap+aof pair after compaction, got %v", names)
	}
	if _, ok := parseGen(names[0], "aof-"); !ok {
		t.Fatalf("unexpected files %v", names)
	}
	g, ok := parseGen(names[1], "snap-")
	if !ok || g < 2 {
		t.Fatalf("expected an advanced snapshot generation, got %v", names)
	}

	s2, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := fingerprint(s2); got != want {
		t.Fatalf("post-compaction recovery differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

func TestCrashWithoutCloseRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, PersistOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	scribble(s)
	want := fingerprint(s)
	// No Close: simulate a crash by abandoning the store. fsync=always
	// means every append already hit disk.
	s2, err := Open(dir, PersistOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := fingerprint(s2); got != want {
		t.Fatalf("crash recovery differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

func TestTornAofTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, PersistOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	scribble(s)
	want := fingerprint(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: a half-written append from a crash mid-write.
	var aof string
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if _, ok := parseGen(e.Name(), "aof-"); ok {
			aof = filepath.Join(dir, e.Name())
		}
	}
	if aof == "" {
		t.Fatal("no aof file found")
	}
	f, err := os.OpenFile(aof, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("*3\r\n$3\r\nSET\r\n$4\r\nhalf"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	before := mAofTruncated.Value()
	s2, err := Open(dir, PersistOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(s2); got != want {
		t.Fatalf("state after torn-tail recovery differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if mAofTruncated.Value() == before {
		t.Fatal("truncation counter did not advance")
	}
	// The store keeps appending past the healed tail.
	s2.Set("after-tear", "ok")
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, PersistOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if v, ok := s3.Get("after-tear"); !ok || v != "ok" {
		t.Fatal("append after truncation lost")
	}
}

// TestAofConcurrentWriters exercises the AOF writer, the background fsync
// ticker and auto-compaction under parallel mutators; run with -race.
func TestAofConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	opt := PersistOptions{Fsync: FsyncInterval, FsyncEvery: time.Millisecond, CompactEvery: 50}
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Incr("n") //nolint:errcheck
				s.RPush("q", fmt.Sprintf("%d-%d", g, i))
				s.HSet("h", fmt.Sprintf("f%d", g), strconv.Itoa(i))
				s.SetEx(fmt.Sprintf("ttl%d", g), "v", time.Hour)
				if i%3 == 0 {
					s.LPop("q")
				}
			}
		}(g)
	}
	wg.Wait()
	want := fingerprint(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, _ := s2.Get("n"); v != "800" {
		t.Fatalf("recovered counter = %s, want 800", v)
	}
	if got := fingerprint(s2); got != want {
		t.Fatalf("concurrent-write recovery differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

func TestOpenRejectsBadFsyncPolicy(t *testing.T) {
	if _, err := Open(t.TempDir(), PersistOptions{Fsync: "sometimes"}); err == nil {
		t.Fatal("bad fsync policy accepted")
	}
}
