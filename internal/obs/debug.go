package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// debugRoute is one mounted debug endpoint: its mux pattern, a one-line
// description for the root index, and the handler.
type debugRoute struct {
	pattern string
	desc    string
	h       http.Handler
	noStore bool // responses must never be cached (live data)
}

// The extension registry: packages that cannot be imported by obs (they
// import obs themselves, e.g. obs/trace) mount their debug endpoints here
// at init time, and every subsequently started DebugServer serves them.
var (
	debugExtraMu sync.Mutex
	debugExtra   []debugRoute
)

// RegisterDebug mounts a handler on every DebugServer started after this
// call. The description appears in the root index; live-data endpoints
// (metrics, traces) should pass noStore so intermediaries never serve a
// stale scrape.
func RegisterDebug(pattern, desc string, h http.Handler, noStore bool) {
	debugExtraMu.Lock()
	defer debugExtraMu.Unlock()
	for i, r := range debugExtra {
		if r.pattern == pattern { // re-registration replaces (tests)
			debugExtra[i] = debugRoute{pattern, desc, h, noStore}
			return
		}
	}
	debugExtra = append(debugExtra, debugRoute{pattern, desc, h, noStore})
}

// noStoreHandler stamps Cache-Control: no-store before the inner handler
// writes: metric scrapes and trace dumps are live data, and a cached copy
// is worse than none.
func noStoreHandler(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Cache-Control", "no-store")
		h.ServeHTTP(w, r)
	})
}

// DebugServer is the optional debug HTTP endpoint: /metrics renders the
// Default registry as text, /debug/pprof/ serves the standard profiling
// handlers, and / lists every mounted route — including routes added via
// RegisterDebug (e.g. /debug/traces from obs/trace) — so the index never
// goes stale as endpoints are added. It runs on its own mux so enabling
// profiling never touches http.DefaultServeMux.
type DebugServer struct {
	// Addr is the resolved listen address (useful with ":0").
	Addr string

	ln     net.Listener
	srv    *http.Server
	routes []debugRoute
}

// ServeDebug starts a debug server on addr (e.g. "localhost:6060" or ":0")
// and returns once it is listening. Callers should Close it on shutdown.
func ServeDebug(addr string) (*DebugServer, error) {
	return ServeDebugRegistry(addr, Default)
}

// ServeDebugRegistry is ServeDebug against an explicit registry.
func ServeDebugRegistry(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}

	routes := []debugRoute{
		{"/metrics", "metrics registry text dump", MetricsHandler(reg), true},
		{"/debug/pprof/", "runtime profiling (pprof)", http.HandlerFunc(pprof.Index), false},
	}
	debugExtraMu.Lock()
	routes = append(routes, debugExtra...)
	debugExtraMu.Unlock()
	sort.SliceStable(routes, func(i, j int) bool { return routes[i].pattern < routes[j].pattern })

	mux := http.NewServeMux()
	for _, rt := range routes {
		h := rt.h
		if rt.noStore {
			h = noStoreHandler(h)
		}
		mux.Handle(rt.pattern, h)
	}
	// The non-index pprof handlers are plumbing under /debug/pprof/, not
	// separate index entries.
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	// Root index rendered from the route table itself, so new registrations
	// appear without touching this file.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "tero debug server\n")
		for _, rt := range routes {
			fmt.Fprintf(w, "  %-18s %s\n", rt.pattern, rt.desc)
		}
	})

	d := &DebugServer{
		Addr:   ln.Addr().String(),
		ln:     ln,
		srv:    &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		routes: routes,
	}
	go d.srv.Serve(ln) //nolint:errcheck — Serve returns ErrServerClosed on Close
	L("obs").Info("debug server listening", "addr", d.Addr)
	return d, nil
}

// Routes returns the mounted route patterns in index order.
func (d *DebugServer) Routes() []string {
	out := make([]string, len(d.routes))
	for i, rt := range d.routes {
		out[i] = rt.pattern
	}
	return out
}

// URL returns the server's base URL.
func (d *DebugServer) URL() string { return "http://" + d.Addr }

// Close shuts the server down immediately, dropping in-flight requests.
// Prefer Shutdown on orderly exits.
func (d *DebugServer) Close() error {
	if d == nil || d.srv == nil {
		return nil
	}
	return d.srv.Close()
}

// Shutdown gracefully shuts the server down: the listener closes right away
// (no new connections), in-flight requests — a /metrics scrape or a pprof
// profile mid-collection — run to completion, and the call returns when the
// server is fully drained or ctx expires (in-flight requests are then cut
// off, ctx.Err() is returned).
func (d *DebugServer) Shutdown(ctx context.Context) error {
	if d == nil || d.srv == nil {
		return nil
	}
	return d.srv.Shutdown(ctx)
}

// ShutdownTimeout is Shutdown with a deadline instead of a context, for
// callers without one (typically a main's deferred cleanup).
func (d *DebugServer) ShutdownTimeout(timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return d.Shutdown(ctx)
}

// MetricsHandler serves a registry's WriteText dump.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		reg.WriteText(w) //nolint:errcheck — nothing to do about a dead client
	})
}
