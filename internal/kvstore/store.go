// Package kvstore implements the key-value store Tero's micro-services
// coordinate through (App. A/B uses Redis): an in-memory store with strings,
// hashes, lists and TTLs, plus a RESP-framed TCP server and client so
// separate processes can share it, exactly as the paper's coordinator and
// downloaders do.
//
// The store is optionally durable and replicated. Open attaches an
// append-only file of RESP-framed write commands plus periodic snapshots
// (aof.go, snapshot.go), and the same command stream feeds live replicas
// (replica.go, the SYNC/REPLICAOF handshake in server.go). Every mutator
// that changed state calls logCmd under the write lock, so the AOF, every
// replica feed and the store itself observe one serialized command order.
package kvstore

import (
	"strconv"
	"strings"
	"sync"
	"time"
)

// list is a deque with a popped-prefix watermark. Slicing `l = l[1:]` on a
// plain []string pins every popped element in the backing array forever (the
// dl:queue work queue grows without bound under sustained push/pop); instead
// LPop blanks the slot — releasing the string — and advances head, and the
// prefix is compacted away once it dominates the backing array.
type list struct {
	head  int
	elems []string
}

func (l *list) len() int { return len(l.elems) - l.head }

// vals returns the live window; callers must not retain it across unlocks.
func (l *list) vals() []string { return l.elems[l.head:] }

// compact drops the popped prefix once it is both non-trivial and at least
// half the backing array, keeping amortized pop cost O(1).
func (l *list) compact() {
	if l.head >= 32 && l.head*2 >= len(l.elems) {
		n := copy(l.elems, l.elems[l.head:])
		for i := n; i < len(l.elems); i++ {
			l.elems[i] = ""
		}
		l.elems = l.elems[:n]
		l.head = 0
	}
}

// Store is an in-memory key-value store safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	strings map[string]string
	hashes  map[string]map[string]string
	lists   map[string]*list
	expiry  map[string]time.Time
	now     func() time.Time

	// Durability and replication, all manipulated under mu. logging is
	// true while any sink (AOF or replica feed) is attached; mutators
	// check it before building the command slice so the pure in-memory
	// path stays allocation-free.
	logging bool
	aof     *aofWriter
	feeds   map[*Feed]struct{}
	replOff int64
}

// New returns an empty store.
func New() *Store {
	return &Store{
		strings: make(map[string]string),
		hashes:  make(map[string]map[string]string),
		lists:   make(map[string]*list),
		expiry:  make(map[string]time.Time),
		now:     time.Now,
		feeds:   make(map[*Feed]struct{}),
	}
}

// SetClock overrides the store's time source (tests and simulations).
func (s *Store) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// expired reports whether key has a passed TTL; caller holds at least RLock.
func (s *Store) expired(key string) bool {
	t, ok := s.expiry[key]
	return ok && s.now().After(t)
}

// purge removes an expired key; caller holds Lock.
func (s *Store) purge(key string) {
	delete(s.strings, key)
	delete(s.hashes, key)
	delete(s.lists, key)
	delete(s.expiry, key)
}

func (s *Store) purgeIfExpired(key string) {
	if s.expired(key) {
		s.purge(key)
	}
}

// dropExpiryIfGone clears a dangling TTL once no value of any type remains
// under key (a drained list or emptied hash); caller holds Lock.
func (s *Store) dropExpiryIfGone(key string) {
	if _, ok := s.strings[key]; ok {
		return
	}
	if _, ok := s.hashes[key]; ok {
		return
	}
	if _, ok := s.lists[key]; ok {
		return
	}
	delete(s.expiry, key)
}

// logCmd records one applied write command: it advances the replication
// offset, appends to the AOF and fans out to live replica feeds. Caller
// holds Lock and has already applied the mutation. A feed that cannot keep
// up (full channel) is dropped rather than stalling writes; the replica
// sees its stream close and can re-SYNC.
func (s *Store) logCmd(args ...string) {
	s.replOff++
	if s.aof != nil {
		s.aof.append(args)
		if s.aof.compactEvery > 0 && s.aof.appends >= s.aof.compactEvery {
			s.compactLocked() //nolint:errcheck // best-effort; error is sticky in aof.err
		}
	}
	for f := range s.feeds {
		select {
		case f.ch <- args:
		default:
			delete(s.feeds, f)
			close(f.ch)
			mReplDropped.Inc()
			mReplReplicas.Set(float64(len(s.feeds)))
		}
	}
	if len(s.feeds) == 0 && s.aof == nil {
		s.logging = false
	}
}

// ReplOffset returns the number of write commands logged so far. It only
// advances while a sink (AOF or replica feed) is attached, and is the
// coordinate replicas report their progress in.
func (s *Store) ReplOffset() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.replOff
}

// Set stores a string value.
func (s *Store) Set(key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeIfExpired(key)
	s.strings[key] = value
	delete(s.expiry, key)
	if s.logging {
		s.logCmd("SET", key, value)
	}
}

// SetEx stores a string value with a time-to-live.
func (s *Store) SetEx(key, value string, ttl time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setAtLocked(key, value, s.now().Add(ttl))
}

// SetAt stores a string value that expires at an absolute deadline. This is
// what SETEX/EXPIRE become in the AOF and the replication stream: a
// relative TTL re-anchored at replay time would resurrect keys for however
// long recovery was delayed, so the log carries the deadline itself.
func (s *Store) SetAt(key, value string, deadline time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setAtLocked(key, value, deadline)
}

func (s *Store) setAtLocked(key, value string, deadline time.Time) {
	// Purge first: an expired prior value of a different type (hash, list)
	// must not survive alongside the new string.
	s.purgeIfExpired(key)
	s.strings[key] = value
	s.expiry[key] = deadline
	if s.logging {
		s.logCmd("SETAT", key, value, strconv.FormatInt(deadline.UnixNano(), 10))
	}
}

// Get returns the string value of key.
func (s *Store) Get(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeIfExpired(key)
	v, ok := s.strings[key]
	return v, ok
}

// Del removes a key of any type. It reports whether something live was
// removed; an already-expired key counts as absent.
func (s *Store) Del(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeIfExpired(key)
	_, a := s.strings[key]
	_, b := s.hashes[key]
	_, c := s.lists[key]
	if !(a || b || c) {
		return false
	}
	s.purge(key)
	if s.logging {
		s.logCmd("DEL", key)
	}
	return true
}

// Incr atomically increments the integer stored at key and returns the new
// value (missing keys start at 0).
func (s *Store) Incr(key string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeIfExpired(key)
	cur := int64(0)
	if v, ok := s.strings[key]; ok {
		p, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, err
		}
		cur = p
	}
	cur++
	s.strings[key] = strconv.FormatInt(cur, 10)
	if s.logging {
		// Logged as INCR, not as the resulting SET: SET would clear a TTL
		// the original command preserved.
		s.logCmd("INCR", key)
	}
	return cur, nil
}

// Keys returns all live keys with the given prefix.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	add := func(k string) {
		if s.expired(k) {
			return
		}
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	for k := range s.strings {
		add(k)
	}
	for k := range s.hashes {
		add(k)
	}
	for k := range s.lists {
		add(k)
	}
	return out
}

// HSet sets a hash field. It reports whether the field was created (true)
// or an existing field was overwritten (false), matching Redis HSET's
// reply.
func (s *Store) HSet(key, field, value string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeIfExpired(key)
	h, ok := s.hashes[key]
	if !ok {
		h = make(map[string]string)
		s.hashes[key] = h
	}
	_, existed := h[field]
	h[field] = value
	if s.logging {
		s.logCmd("HSET", key, field, value)
	}
	return !existed
}

// HGet returns a hash field.
func (s *Store) HGet(key, field string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeIfExpired(key)
	v, ok := s.hashes[key][field]
	return v, ok
}

// HDel removes a hash field, reporting whether it existed. The hash entry
// itself is deleted once its last field goes, so fully-drained hashes stop
// appearing in Keys/Expire/Del.
func (s *Store) HDel(key, field string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeIfExpired(key)
	h, ok := s.hashes[key]
	if !ok {
		return false
	}
	if _, ok := h[field]; !ok {
		return false
	}
	delete(h, field)
	if len(h) == 0 {
		delete(s.hashes, key)
		s.dropExpiryIfGone(key)
	}
	if s.logging {
		s.logCmd("HDEL", key, field)
	}
	return true
}

// HGetAll returns a copy of the whole hash.
func (s *Store) HGetAll(key string) map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeIfExpired(key)
	out := make(map[string]string, len(s.hashes[key]))
	for f, v := range s.hashes[key] {
		out[f] = v
	}
	return out
}

// HLen returns the number of fields in a hash.
func (s *Store) HLen(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeIfExpired(key)
	return len(s.hashes[key])
}

// LPush prepends values to a list and returns its new length.
func (s *Store) LPush(key string, values ...string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeIfExpired(key)
	l, ok := s.lists[key]
	if !ok {
		l = &list{}
		s.lists[key] = l
	}
	for _, v := range values {
		if l.head > 0 {
			l.head--
			l.elems[l.head] = v
		} else {
			l.elems = append(l.elems, "")
			copy(l.elems[1:], l.elems)
			l.elems[0] = v
		}
	}
	if s.logging {
		s.logCmd(append([]string{"LPUSH", key}, values...)...)
	}
	return l.len()
}

// RPush appends values to a list and returns its new length.
func (s *Store) RPush(key string, values ...string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeIfExpired(key)
	l, ok := s.lists[key]
	if !ok {
		l = &list{}
		s.lists[key] = l
	}
	l.elems = append(l.elems, values...)
	if s.logging {
		s.logCmd(append([]string{"RPUSH", key}, values...)...)
	}
	return l.len()
}

// LPop removes and returns the first element of a list.
func (s *Store) LPop(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeIfExpired(key)
	l, ok := s.lists[key]
	if !ok || l.len() == 0 {
		return "", false
	}
	v := l.elems[l.head]
	l.elems[l.head] = "" // release the string; see type list
	l.head++
	if l.len() == 0 {
		delete(s.lists, key)
		s.dropExpiryIfGone(key)
	} else {
		l.compact()
	}
	if s.logging {
		s.logCmd("LPOP", key)
	}
	return v, true
}

// RPop removes and returns the last element of a list.
func (s *Store) RPop(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeIfExpired(key)
	l, ok := s.lists[key]
	if !ok || l.len() == 0 {
		return "", false
	}
	n := len(l.elems)
	v := l.elems[n-1]
	l.elems[n-1] = "" // release before reslicing: cap() keeps the slot alive
	l.elems = l.elems[:n-1]
	if l.len() == 0 {
		delete(s.lists, key)
		s.dropExpiryIfGone(key)
	}
	if s.logging {
		s.logCmd("RPOP", key)
	}
	return v, true
}

// LLen returns the length of a list.
func (s *Store) LLen(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeIfExpired(key)
	if l, ok := s.lists[key]; ok {
		return l.len()
	}
	return 0
}

// LRange returns a copy of list elements in [start, stop] (inclusive,
// negative indexes count from the end, Redis-style).
func (s *Store) LRange(key string, start, stop int) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeIfExpired(key)
	var l []string
	if e, ok := s.lists[key]; ok {
		l = e.vals()
	}
	n := len(l)
	if start < 0 {
		start += n
	}
	if stop < 0 {
		stop += n
	}
	if start < 0 {
		start = 0
	}
	if stop >= n {
		stop = n - 1
	}
	if start > stop || n == 0 {
		return nil
	}
	out := make([]string, stop-start+1)
	copy(out, l[start:stop+1])
	return out
}

// Expire sets a TTL on an existing key; it reports whether the key exists.
// An already-expired key is purged first, never resurrected.
func (s *Store) Expire(key string, ttl time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expireAtLocked(key, s.now().Add(ttl))
}

// ExpireAt sets an absolute expiry deadline on an existing key (the AOF and
// replication form of Expire; see SetAt).
func (s *Store) ExpireAt(key string, deadline time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expireAtLocked(key, deadline)
}

func (s *Store) expireAtLocked(key string, deadline time.Time) bool {
	s.purgeIfExpired(key)
	_, a := s.strings[key]
	_, b := s.hashes[key]
	_, c := s.lists[key]
	if !(a || b || c) {
		return false
	}
	s.expiry[key] = deadline
	if s.logging {
		s.logCmd("EXPIREAT", key, strconv.FormatInt(deadline.UnixNano(), 10))
	}
	return true
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	return len(s.Keys(""))
}
