package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"tero/internal/stats"
)

// LoadGen hammers a running latency service with concurrent clients, the
// way the bench trajectory measures the producer side: it discovers the
// served {location, game} pairs from /v1/locations, then each client
// round-robins latency queries (with periodic If-None-Match revalidations)
// and pair comparisons, recording per-request latency.
type LoadGen struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Clients is the number of concurrent clients (default 32).
	Clients int
	// RequestsPerClient is each client's request budget (default 200).
	RequestsPerClient int
	// RevalidateEvery makes every k-th request an If-None-Match replay of
	// the previous response's ETag (default 4; 0 disables).
	RevalidateEvery int
	// CompareEvery makes every k-th request a /v1/compare of two adjacent
	// pairs (default 8; 0 disables).
	CompareEvery int
}

// LoadReport is the outcome of one LoadGen run.
type LoadReport struct {
	Clients       int
	Requests      int
	OK            int // 200s
	NotModified   int // 304s
	ClientErrors  int // 4xx
	ServerErrors  int // 5xx
	TransportErrs int
	Elapsed       time.Duration
	Throughput    float64 // requests per second
	P50Ms         float64
	P99Ms         float64
	MaxMs         float64
}

// String renders the report as one aligned block.
func (r LoadReport) String() string {
	return fmt.Sprintf(
		"clients %d  requests %d  ok %d  304 %d  4xx %d  5xx %d  transport-errors %d\n"+
			"elapsed %s  throughput %.0f req/s  p50 %.2f ms  p99 %.2f ms  max %.2f ms",
		r.Clients, r.Requests, r.OK, r.NotModified, r.ClientErrors,
		r.ServerErrors, r.TransportErrs, r.Elapsed.Round(time.Millisecond),
		r.Throughput, r.P50Ms, r.P99Ms, r.MaxMs)
}

// target is one queryable {location, game} pair.
type target struct {
	locKey, game string
}

// discoverTargets reads /v1/locations and flattens it into pairs.
func (lg *LoadGen) discoverTargets(ctx context.Context, client *http.Client) ([]target, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, lg.BaseURL+"/v1/locations", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: loadgen discover: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: loadgen discover: status %d", resp.StatusCode)
	}
	var listing struct {
		Locations []LocationSummary `json:"locations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		return nil, fmt.Errorf("serve: loadgen discover: %w", err)
	}
	var out []target
	for _, l := range listing.Locations {
		for _, g := range l.Games {
			out = append(out, target{locKey: l.Location.Key, game: g})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("serve: loadgen: service lists no {location, game} pairs")
	}
	return out, nil
}

// latencyURL builds the query URL for a target.
func (lg *LoadGen) latencyURL(t target) string {
	v := url.Values{}
	v.Set("location", t.locKey)
	v.Set("game", t.game)
	return lg.BaseURL + "/v1/latency?" + v.Encode()
}

// compareURL builds the comparison URL for two targets.
func (lg *LoadGen) compareURL(a, b target) string {
	v := url.Values{}
	v.Set("a", a.locKey+"::"+a.game)
	v.Set("b", b.locKey+"::"+b.game)
	return lg.BaseURL + "/v1/compare?" + v.Encode()
}

// clientStats is one client's tally, merged after the run.
type clientStats struct {
	requests, ok, notModified, clientErrs, serverErrs, transportErrs int
	durations                                                        []float64 // ms
}

// Run executes the load test and aggregates the report. It returns an
// error only when the run could not start (discovery failed); request
// failures are counted, not fatal.
func (lg *LoadGen) Run(ctx context.Context) (LoadReport, error) {
	clients := lg.Clients
	if clients <= 0 {
		clients = 32
	}
	perClient := lg.RequestsPerClient
	if perClient <= 0 {
		perClient = 200
	}
	revalidate := lg.RevalidateEvery
	if revalidate == 0 {
		revalidate = 4
	}
	compare := lg.CompareEvery
	if compare == 0 {
		compare = 8
	}

	transport := &http.Transport{
		MaxIdleConns:        clients * 2,
		MaxIdleConnsPerHost: clients * 2,
	}
	defer transport.CloseIdleConnections()
	httpClient := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	targets, err := lg.discoverTargets(ctx, httpClient)
	if err != nil {
		return LoadReport{}, err
	}

	tallies := make([]clientStats, clients)
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			cs := &tallies[c]
			cs.durations = make([]float64, 0, perClient)
			etags := make(map[string]string, len(targets))
			for i := 0; i < perClient; i++ {
				if ctx.Err() != nil {
					return
				}
				t := targets[(c+i)%len(targets)]
				u := lg.latencyURL(t)
				var inm string
				if compare > 0 && i%compare == compare-1 && len(targets) > 1 {
					t2 := targets[(c+i+1)%len(targets)]
					u = lg.compareURL(t, t2)
				} else if revalidate > 0 && i%revalidate == revalidate-1 {
					inm = etags[u]
				}
				cs.requests++
				reqStart := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
				if err != nil {
					cs.transportErrs++
					continue
				}
				if inm != "" {
					req.Header.Set("If-None-Match", inm)
				}
				resp, err := httpClient.Do(req)
				if err != nil {
					cs.transportErrs++
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				cs.durations = append(cs.durations,
					float64(time.Since(reqStart))/float64(time.Millisecond))
				switch {
				case resp.StatusCode == http.StatusOK:
					cs.ok++
					if et := resp.Header.Get("ETag"); et != "" {
						etags[u] = et
					}
				case resp.StatusCode == http.StatusNotModified:
					cs.notModified++
				case resp.StatusCode >= 500:
					cs.serverErrs++
				case resp.StatusCode >= 400:
					cs.clientErrs++
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := LoadReport{Clients: clients, Elapsed: elapsed}
	var all []float64
	for i := range tallies {
		cs := &tallies[i]
		rep.Requests += cs.requests
		rep.OK += cs.ok
		rep.NotModified += cs.notModified
		rep.ClientErrors += cs.clientErrs
		rep.ServerErrors += cs.serverErrs
		rep.TransportErrs += cs.transportErrs
		all = append(all, cs.durations...)
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
	}
	sort.Float64s(all)
	if p, ok := stats.PercentileOK(all, 50); ok {
		rep.P50Ms = p
	}
	if p, ok := stats.PercentileOK(all, 99); ok {
		rep.P99Ms = p
	}
	if _, max, ok := stats.MinMaxOK(all); ok {
		rep.MaxMs = max
	}
	return rep, nil
}
