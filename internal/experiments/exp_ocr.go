package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"tero/internal/core"
	"tero/internal/games"
	"tero/internal/imageproc"
	"tero/internal/imaging"
	"tero/internal/ocr"
	"tero/internal/stats"
	"tero/internal/worldsim"
)

func init() {
	register("tab4", "miss and error rates of OCR engines and Tero (Table 4)", runTab4)
	register("fig5", "image-processing and data-analysis error distributions (Fig. 5)", runFig5)
}

// digitsOnly extracts the digit string from raw engine output.
func digitsOnly(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r >= '0' && r <= '9' {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

func runTab4(o Options) ([]*Table, error) {
	n := o.scaled(3000)
	cfg := worldsim.DefaultConfig(o.Seed)
	cfg.Streamers = 400
	cfg.Days = 3
	world := worldsim.New(cfg)
	opt := worldsim.DefaultRenderOptions()
	rng := rand.New(rand.NewSource(o.Seed + 7))
	engines := ocr.Engines()
	extractor := imageproc.New()

	type counter struct{ visible, missed, wrong int }
	perEngine := make([]counter, len(engines))
	var tero counter
	var teroDigitDropWrong int
	rendered := 0

	// Rendering consumes the shared rng and must stay serial; the OCR work
	// dominates and is embarrassingly parallel. Thumbnails are rendered in
	// batches, each batch fans out to the worker pool, and the counters are
	// merged in render order — totals identical to the serial loop.
	type job struct {
		img   *imaging.Gray
		game  *games.Game
		want  string
		shown int
	}
	type outcome struct {
		missed, wrong          []bool // per engine
		tMissed, tWrong, tDrop bool
	}
	const batchSize = 64
	workers := o.workers()
	jobs := make([]job, 0, batchSize)
	outs := make([]outcome, batchSize)
	flush := func() {
		parallelFor(workers, len(jobs), func(i int) {
			j := jobs[i]
			out := outcome{
				missed: make([]bool, len(engines)),
				wrong:  make([]bool, len(engines)),
			}
			crop := j.img.Crop(j.game.UI.CropRect(4))
			for e, eng := range engines {
				got := digitsOnly(eng.Recognize(crop).Text)
				switch {
				case got == "":
					out.missed[e] = true
				case got != j.want:
					out.wrong[e] = true
				}
			}
			imaging.Recycle(crop)
			ex := extractor.Extract(j.img, j.game)
			imaging.Recycle(j.img)
			switch {
			case !ex.OK:
				out.tMissed = true
			case ex.Value != j.shown:
				out.tWrong = true
				out.tDrop = isDigitDrop(j.shown, ex.Value)
			}
			outs[i] = out
		})
		for i := range jobs {
			out := &outs[i]
			for e := range engines {
				perEngine[e].visible++
				switch {
				case out.missed[e]:
					perEngine[e].missed++
				case out.wrong[e]:
					perEngine[e].wrong++
				}
			}
			tero.visible++
			switch {
			case out.tMissed:
				tero.missed++
			case out.tWrong:
				tero.wrong++
				if out.tDrop {
					teroDigitDropWrong++
				}
			}
		}
		jobs = jobs[:0]
	}

sampling:
	for _, st := range world.Streamers {
		for _, gs := range world.Sessions(st) {
			for i := range gs.TrueMs {
				if rendered >= n {
					break sampling
				}
				if rng.Float64() > 0.3 {
					continue
				}
				img, truth := worldsim.RenderThumbnail(gs, i, opt, rng)
				rendered++
				// Thumbnails with a visible latency measurement (§H.2
				// considers only those; clock overlays and lobby zeros are
				// no-measurement cases we skip here).
				if truth.Clock || truth.ShownMs <= 0 {
					imaging.Recycle(img)
					continue
				}
				jobs = append(jobs, job{
					img:   img,
					game:  gs.Game,
					want:  fmt.Sprintf("%d", truth.ShownMs),
					shown: truth.ShownMs,
				})
				if len(jobs) == batchSize {
					flush()
				}
			}
		}
	}
	flush()

	t := &Table{
		Title:  "Table 4: miss and error rates of OCR engines and their combination",
		Header: []string{"system", "measurements not extracted", "incorrect measurements"},
		Notes: []string{fmt.Sprintf("%d thumbnails rendered, %d with a visible measurement",
			rendered, tero.visible)},
	}
	names := []string{"EasyOCR (easyscan)", "PaddleOCR (paddleread)", "Tesseract (tessera)"}
	order := []int{1, 2, 0} // paper's row order: EasyOCR, PaddleOCR, Tesseract
	for k, e := range order {
		c := perEngine[e]
		if c.visible == 0 {
			continue
		}
		t.AddRow(names[k],
			pct(float64(c.missed)/float64(c.visible)),
			pct(float64(c.wrong)/float64(c.visible-c.missed)))
	}
	if tero.visible > 0 {
		t.AddRow("Tero",
			pct(float64(tero.missed)/float64(tero.visible)),
			pct(float64(tero.wrong)/float64(tero.visible-tero.missed)))
		if tero.wrong > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"digit drops: %.1f%% of Tero's incorrect values (paper: 68.42%%)",
				100*float64(teroDigitDropWrong)/float64(tero.wrong)))
		}
	}
	return []*Table{t}, nil
}

// isDigitDrop reports whether got is want with leading digit(s) removed.
func isDigitDrop(want, got int) bool {
	w := fmt.Sprintf("%d", want)
	g := fmt.Sprintf("%d", got)
	return len(g) < len(w) && strings.HasSuffix(w, g)
}

func runFig5(o Options) ([]*Table, error) {
	n := o.scaled(2500)
	cfg := worldsim.DefaultConfig(o.Seed)
	cfg.Streamers = 400
	cfg.Days = 3
	world := worldsim.New(cfg)
	opt := worldsim.DefaultRenderOptions()
	rng := rand.New(rand.NewSource(o.Seed + 7))
	extractor := imageproc.New()

	var correct, incorrect, missing []float64
	rendered := 0
sampling:
	for _, st := range world.Streamers {
		for _, gs := range world.Sessions(st) {
			for i := range gs.TrueMs {
				if rendered >= n {
					break sampling
				}
				if rng.Float64() > 0.3 {
					continue
				}
				img, truth := worldsim.RenderThumbnail(gs, i, opt, rng)
				rendered++
				if truth.Clock || truth.ShownMs <= 0 {
					continue
				}
				ex := extractor.Extract(img, gs.Game)
				ms := float64(truth.ShownMs)
				switch {
				case !ex.OK:
					missing = append(missing, ms)
				case ex.Value == truth.ShownMs:
					correct = append(correct, ms)
				default:
					incorrect = append(incorrect, ms)
				}
			}
		}
	}

	a := &Table{
		Title:  "Fig. 5a: latency distribution of correct / incorrect / missing extractions",
		Header: []string{"class", "n", "p25", "p50", "p75", "mean"},
		Notes:  []string{"no-bias check: the three classes should have similar latency distributions"},
	}
	for _, row := range []struct {
		name string
		xs   []float64
	}{{"correct", correct}, {"incorrect", incorrect}, {"missing", missing}} {
		if len(row.xs) == 0 {
			a.AddRow(row.name, "0", "-", "-", "-", "-")
			continue
		}
		b := stats.NewBoxplot(row.xs)
		a.AddRow(row.name, itoa(len(row.xs)), f1(b.P25), f1(b.P50), f1(b.P75), f1(stats.Mean(row.xs)))
	}

	// Fig. 5b: of the incorrect measurements, how many does data-analysis
	// discard/correct versus miss? Feed each streamer's observed streams
	// (with injected OCR-style errors) through core and track the wrong
	// points' fate.
	discarded, missed := runFig5b(o)
	b := &Table{
		Title:  "Fig. 5b: incorrect measurements discarded vs missed by data-analysis",
		Header: []string{"fate", "count", "share"},
		Notes:  []string{"paper: anomaly detection misses ≈30% of incorrect values (those within LatGap of neighbours)"},
	}
	tot := discarded + missed
	if tot > 0 {
		b.AddRow("discarded/corrected", itoa(discarded), pct(float64(discarded)/float64(tot)))
		b.AddRow("missed", itoa(missed), pct(float64(missed)/float64(tot)))
	}
	return []*Table{a, b}, nil
}

// runFig5b measures how many observation-injected wrong values survive the
// core data-analysis pipeline.
func runFig5b(o Options) (discarded, missed int) {
	cfg := worldsim.DefaultConfig(o.Seed + 1)
	cfg.Streamers = o.scaled(400)
	world := worldsim.New(cfg)
	obs := worldsim.DefaultObservation()
	params := core.DefaultParams()
	rng := rand.New(rand.NewSource(o.Seed + 13))

	for _, st := range world.Streamers {
		sessions := world.Sessions(st)
		// Group sessions per game.
		byGame := map[string][]*worldsim.GenStream{}
		for _, gs := range sessions {
			byGame[gs.Game.Name] = append(byGame[gs.Game.Name], gs)
		}
		for _, game := range sortedKeys(byGame) {
			group := byGame[game]
			var streams []core.Stream
			type wrongPt struct{ streamIdx, ptIdx int }
			var wrongs []wrongPt
			truthOf := map[wrongPt]float64{}
			for si, gs := range group {
				cs := gs.ToStream(obs, rng)
				// Identify wrong points by comparing against truth times.
				truthAt := map[int64]float64{}
				for i, tm := range gs.Times {
					truthAt[tm.Unix()] = gs.TrueMs[i]
				}
				for pi, pt := range cs.Points {
					if tv, ok := truthAt[pt.T.Unix()]; ok && tv != pt.Ms {
						w := wrongPt{si, pi}
						wrongs = append(wrongs, w)
						truthOf[w] = tv
					}
				}
				streams = append(streams, cs)
			}
			if len(wrongs) == 0 {
				continue
			}
			a := core.Analyze(streams, params)
			if a.Discarded {
				discarded += len(wrongs)
				continue
			}
			// A wrong point is "caught" if its segment was discarded or
			// corrected; "missed" if it survives into kept data unchanged.
			for _, w := range wrongs {
				caught := true
				for i := range a.Segments {
					s := &a.Segments[i]
					if s.StreamIdx != w.streamIdx || w.ptIdx < s.Start || w.ptIdx >= s.End {
						continue
					}
					switch s.Flag {
					case core.FlagDiscarded:
						caught = true
					case core.FlagCorrected:
						caught = true
					default:
						// Kept segment: wrong value survived.
						caught = !segKept(s)
					}
					break
				}
				if caught {
					discarded++
				} else {
					missed++
				}
			}
		}
	}
	return discarded, missed
}

// segKept mirrors core's kept-segment rule for the fate accounting.
func segKept(s *core.Segment) bool {
	switch s.Flag {
	case core.FlagAbsorbed, core.FlagCorrected:
		return true
	case core.FlagNone:
		return s.Stable
	default:
		return false
	}
}
