package trace

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strconv"
	"time"

	"tero/internal/obs"
)

func init() {
	// Mounted via the obs debug-route registry (obs cannot import this
	// package), so any binary importing trace gets /debug/traces on its
	// DebugServer — and the root index lists it automatically.
	obs.RegisterDebug("/debug/traces", "stored traces (tail-sampled; ?id=<hex> for detail)",
		Handler(), true)
}

// Handler serves the active trace store: an HTML list at the bare path,
// JSON with ?format=json, and a JSON span tree with ?id=<16-hex trace id>.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := ActiveStore()
		if id := r.URL.Query().Get("id"); id != "" {
			serveDetail(w, st, id)
			return
		}
		if r.URL.Query().Get("format") == "json" {
			serveListJSON(w, st)
			return
		}
		serveListHTML(w, st)
	})
}

// spanJSON is one node of the JSON span tree.
type spanJSON struct {
	SpanID   string     `json:"span_id"`
	ParentID string     `json:"parent_id,omitempty"`
	Name     string     `json:"name"`
	WallMs   float64    `json:"wall_ms"`
	Start    string     `json:"start"`
	VStart   string     `json:"virtual_start,omitempty"`
	VirtualS float64    `json:"virtual_seconds,omitempty"`
	Err      string     `json:"error,omitempty"`
	Attrs    []Attr     `json:"attrs,omitempty"`
	Children []spanJSON `json:"children,omitempty"`
}

// traceJSON is the detail (and list-entry) rendering of a trace.
type traceJSON struct {
	TraceID  string     `json:"trace_id"`
	Root     string     `json:"root"`
	Spans    int        `json:"spans"`
	WallMs   float64    `json:"wall_ms"`
	VirtualS float64    `json:"virtual_seconds,omitempty"`
	Start    string     `json:"start"`
	Err      bool       `json:"error,omitempty"`
	Reason   string     `json:"reason"`
	Tree     []spanJSON `json:"tree,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func summarize(t *Trace, withTree bool) traceJSON {
	tj := traceJSON{
		TraceID: fmt.Sprintf("%016x", t.ID),
		Root:    t.Root,
		Spans:   len(t.Spans),
		WallMs:  ms(t.Duration()),
		Start:   t.Start.UTC().Format(time.RFC3339Nano),
		Err:     t.Err,
		Reason:  t.Reason,
	}
	if !t.VStart.IsZero() && t.VEnd.After(t.VStart) {
		tj.VirtualS = t.VEnd.Sub(t.VStart).Seconds()
	}
	if withTree {
		tj.Tree = buildTree(t)
	}
	return tj
}

// buildTree nests spans by parent ID; orphans (parent span not stored)
// surface as additional roots rather than vanishing.
func buildTree(t *Trace) []spanJSON {
	nodes := make(map[uint64]*spanJSON, len(t.Spans))
	order := make([]uint64, 0, len(t.Spans))
	for i := range t.Spans {
		s := &t.Spans[i]
		n := &spanJSON{
			SpanID: fmt.Sprintf("%016x", s.SpanID),
			Name:   s.Name,
			WallMs: ms(s.End.Sub(s.Start)),
			Start:  s.Start.UTC().Format(time.RFC3339Nano),
			Err:    s.Err,
			Attrs:  s.Attrs,
		}
		if s.ParentID != 0 {
			n.ParentID = fmt.Sprintf("%016x", s.ParentID)
		}
		if !s.VStart.IsZero() {
			n.VStart = s.VStart.UTC().Format(time.RFC3339Nano)
			if s.VEnd.After(s.VStart) {
				n.VirtualS = s.VEnd.Sub(s.VStart).Seconds()
			}
		}
		nodes[s.SpanID] = n
		order = append(order, s.SpanID)
	}
	var roots []spanJSON
	// Attach children in recorded order, depth-first at the end so nested
	// slices are complete before being copied into their parents.
	children := make(map[uint64][]uint64)
	for _, id := range order {
		s := nodes[id]
		pid, _ := strconv.ParseUint(s.ParentID, 16, 64)
		if s.ParentID != "" && nodes[pid] != nil {
			children[pid] = append(children[pid], id)
		}
	}
	var build func(id uint64) spanJSON
	build = func(id uint64) spanJSON {
		n := *nodes[id]
		for _, cid := range children[id] {
			n.Children = append(n.Children, build(cid))
		}
		return n
	}
	for _, id := range order {
		s := nodes[id]
		pid, _ := strconv.ParseUint(s.ParentID, 16, 64)
		if s.ParentID == "" || nodes[pid] == nil {
			roots = append(roots, build(id))
		}
	}
	return roots
}

func serveDetail(w http.ResponseWriter, st *Store, idHex string) {
	id, err := strconv.ParseUint(idHex, 16, 64)
	if err != nil {
		http.Error(w, "bad trace id (want 16 hex digits)", http.StatusBadRequest)
		return
	}
	t, ok := st.Get(id)
	if !ok {
		http.Error(w, "no such trace (evicted or never sampled)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(summarize(t, true)) //nolint:errcheck — nothing to do about a dead client
}

func serveListJSON(w http.ResponseWriter, st *Store) {
	traces := st.Traces()
	out := make([]traceJSON, len(traces))
	for i, t := range traces {
		out[i] = summarize(t, true)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct { //nolint:errcheck
		Count  int         `json:"count"`
		Traces []traceJSON `json:"traces"`
	}{len(out), out})
}

func serveListHTML(w http.ResponseWriter, st *Store) {
	traces := st.Traces()
	// Group counts per root for the header line.
	byRoot := make(map[string]int)
	for _, t := range traces {
		byRoot[t.Root]++
	}
	roots := make([]string, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Strings(roots)

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!doctype html><title>tero traces</title><style>
body{font:14px monospace;margin:1.5em}table{border-collapse:collapse}
td,th{padding:2px 10px;text-align:left;border-bottom:1px solid #ddd}
.err{color:#b00}.reason{color:#777}</style><h1>stored traces</h1>`)
	fmt.Fprintf(w, "<p>%d traces retained", len(traces))
	for _, r := range roots {
		fmt.Fprintf(w, " · %s×%d", html.EscapeString(r), byRoot[r])
	}
	fmt.Fprint(w, "</p><table><tr><th>trace</th><th>root</th><th>spans</th>"+
		"<th>wall ms</th><th>virtual s</th><th>kept</th><th>start</th></tr>")
	for _, t := range traces {
		tj := summarize(t, false)
		cls := ""
		if t.Err {
			cls = ` class="err"`
		}
		fmt.Fprintf(w,
			`<tr%s><td><a href="?id=%s">%s</a></td><td>%s</td><td>%d</td>`+
				`<td>%.3f</td><td>%.0f</td><td class="reason">%s</td><td>%s</td></tr>`,
			cls, tj.TraceID, tj.TraceID, html.EscapeString(t.Root), tj.Spans,
			tj.WallMs, tj.VirtualS, tj.Reason, tj.Start)
	}
	fmt.Fprint(w, "</table>")
}
