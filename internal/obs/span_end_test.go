package obs

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestSpanEndConcurrent is the Span.End race regression: End from many
// goroutines (a handler's defer racing a timeout path, say) must record
// the span exactly once and never double-observe the stage histogram.
// Meaningful under -race.
func TestSpanEndConcurrent(t *testing.T) {
	h := Default.Histogram(Lbl("span_seconds", "stage", "race.stage"), DurationBuckets)
	base := h.Count()
	const spans = 40
	for i := 0; i < spans; i++ {
		sp := StartSpan("race.stage")
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sp.End()
			}()
		}
		wg.Wait()
	}
	if got := h.Count() - base; got != spans {
		t.Fatalf("histogram observed %d spans, want %d (double End recorded)", got, spans)
	}
}

func TestHistogramExemplars(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("ex_seconds", []float64{1, 10})
	h.ObserveExemplar(0.5, 0xabc)
	h.ObserveExemplar(5, 0xdef)
	h.ObserveExemplar(100, 0x123)
	h.ObserveExemplar(0.7, 0) // ref 0: plain observation, no exemplar overwrite
	ex := h.Exemplars()
	if len(ex) != 3 {
		t.Fatalf("exemplars = %d, want 3", len(ex))
	}
	want := map[float64]uint64{1: 0xabc, 10: 0xdef}
	for _, e := range ex {
		if w, ok := want[e.LE]; ok && e.Ref != w {
			t.Errorf("bucket le=%v ref %x, want %x", e.LE, e.Ref, w)
		}
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		"exemplar ex_seconds le=1 trace=0000000000000abc",
		"exemplar ex_seconds le=+Inf trace=0000000000000123",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("WriteText missing %q in:\n%s", line, out)
		}
	}
}

func TestHistogramCountLE(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("le_seconds", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.9, 5, 50, 500} {
		h.Observe(v)
	}
	for _, tc := range []struct {
		bound float64
		want  int64
	}{{1, 2}, {10, 3}, {100, 4}, {1e9, 4}} { // +Inf overflow never counts
		if got := h.CountLE(tc.bound); got != tc.want {
			t.Errorf("CountLE(%v) = %d, want %d", tc.bound, got, tc.want)
		}
	}
}

func TestRegisterDebugRoutesAndNoStore(t *testing.T) {
	reg := NewRegistry()
	prevW := SetLogOutput(io.Discard)
	defer SetLogOutput(prevW)

	RegisterDebug("/debug/trtest", "trace-test route",
		http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Write([]byte("trtest-body")) //nolint:errcheck
		}), true)
	srv, err := ServeDebugRegistry("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	routes := strings.Join(srv.Routes(), " ")
	for _, want := range []string{"/metrics", "/debug/pprof/", "/debug/trtest"} {
		if !strings.Contains(routes, want) {
			t.Errorf("Routes() missing %s (got %s)", want, routes)
		}
	}

	get := func(path string) (int, string, string) {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Cache-Control")
	}
	// Root index is rendered from the registrations.
	if _, body, _ := get("/"); !strings.Contains(body, "/debug/trtest") ||
		!strings.Contains(body, "trace-test route") ||
		!strings.Contains(body, "/metrics") {
		t.Errorf("index missing registered route:\n%s", body)
	}
	if code, body, cc := get("/debug/trtest"); code != 200 ||
		body != "trtest-body" || cc != "no-store" {
		t.Errorf("registered route: code=%d body=%q cache-control=%q", code, body, cc)
	}
	if _, _, cc := get("/metrics"); cc != "no-store" {
		t.Errorf("/metrics cache-control = %q, want no-store", cc)
	}
}
