package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"tero/internal/core"
	"tero/internal/stats"
	"tero/internal/worldsim"
)

func init() {
	register("fig15", "sensitivity to StableLen and LatGap (Fig. 15)", runFig15)
	register("fig16", "sensitivity to MaxSpikes (Fig. 16)", runFig16)
}

// sensitivityWorld builds the analyses input: per {streamer, game} streams.
func sensitivityWorld(o Options, streamers int) map[string][][]core.Stream {
	cfg := worldsim.DefaultConfig(o.Seed)
	cfg.Streamers = o.scaled(streamers)
	world := worldsim.New(cfg)
	obs := worldsim.DefaultObservation()
	rng := rand.New(rand.NewSource(o.Seed + 3))
	byGame := map[string][][]core.Stream{}
	for _, st := range world.Streamers {
		grouped := map[string][]core.Stream{}
		for _, gs := range world.Sessions(st) {
			grouped[gs.Game.Name] = append(grouped[gs.Game.Name], gs.ToStream(obs, rng))
		}
		for _, game := range sortedKeys(grouped) {
			byGame[game] = append(byGame[game], grouped[game])
		}
	}
	return byGame
}

func runFig15(o Options) ([]*Table, error) {
	byGame := sensitivityWorld(o, 1200)
	lolSets := byGame["League of Legends"]

	// Fig. 15a: users/data points remaining and spike/glitch proportions as
	// StableLen grows (LoL, LatGap 15).
	a := &Table{
		Title: "Fig. 15a: StableLen sensitivity (League of Legends, LatGap 15ms)",
		Header: []string{"StableLen [min]", "users kept", "points kept",
			"% spike points", "% glitch points"},
	}
	for _, mins := range []int{5, 15, 25, 35, 45, 55} {
		p := core.DefaultParams()
		p.StableLen = time.Duration(mins) * time.Minute
		var usersKept, usersTotal, ptsKept, ptsTotal, spikePts, glitchPts int
		for _, streams := range lolSets {
			usersTotal++
			a := core.Analyze(streams, p)
			ptsTotal += a.TotalPoints
			if a.Discarded {
				continue
			}
			usersKept++
			ptsKept += a.KeptPoints
			for _, s := range a.Spikes {
				spikePts += s.Points
			}
			for _, g := range a.Glitches {
				glitchPts += g.Points
			}
		}
		if usersTotal == 0 || ptsTotal == 0 {
			continue
		}
		a.AddRow(fmt.Sprintf("%d", mins),
			pct(float64(usersKept)/float64(usersTotal)),
			pct(float64(ptsKept)/float64(ptsTotal)),
			pct(float64(spikePts)/float64(ptsTotal)),
			pct(float64(glitchPts)/float64(ptsTotal)))
	}
	a.Notes = append(a.Notes,
		"paper: users kept drops quickly with StableLen; spikes/glitches grow with it")

	// Fig. 15b: significant spikes vs StableLen for LatGap {8, 15, 25}.
	b := &Table{
		Title:  "Fig. 15b: significant spikes (≥15ms over stream mean) per 1000 points",
		Header: []string{"StableLen [min]", "LatGap 8", "LatGap 15", "LatGap 25"},
	}
	for _, mins := range []int{5, 15, 25, 35, 45, 55} {
		row := []string{fmt.Sprintf("%d", mins)}
		for _, gap := range []float64{8, 15, 25} {
			p := core.DefaultParams()
			p.StableLen = time.Duration(mins) * time.Minute
			p.LatGap = gap
			sig, pts := 0, 0
			for _, streams := range lolSets {
				a := core.Analyze(streams, p)
				pts += a.TotalPoints
				if a.Discarded {
					continue
				}
				for _, sp := range a.Spikes {
					if significantSpike(a, sp, 15) {
						sig++
					}
				}
			}
			if pts == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, f2(1000*float64(sig)/float64(pts)))
		}
		b.AddRow(row...)
	}
	b.Notes = append(b.Notes,
		"paper: significant spikes grow quickly for low StableLen, slowing around 25 min",
		"(motivating StableLen = 30 min, matching typical match lengths)")

	// Fig. 15c: proportion of unstable-but-not-anomalous points per user,
	// by LatGap, for three games.
	c := &Table{
		Title:  "Fig. 15c: median proportion of unstable (not spike/glitch) points per user",
		Header: []string{"game", "LatGap 8", "LatGap 15", "LatGap 25"},
	}
	for _, game := range []string{"League of Legends", "Genshin Impact", "Dota 2"} {
		row := []string{game}
		for _, gap := range []float64{8, 15, 25} {
			p := core.DefaultParams()
			p.LatGap = gap
			var fracs []float64
			for _, streams := range byGame[game] {
				a := core.Analyze(streams, p)
				if a.Discarded || a.TotalPoints == 0 {
					continue
				}
				unstable := 0
				for i := range a.Segments {
					s := &a.Segments[i]
					if s.Flag == core.FlagAbsorbed || (s.Flag == core.FlagNone && !s.Stable) {
						unstable += s.Len()
					}
				}
				fracs = append(fracs, float64(unstable)/float64(a.TotalPoints))
			}
			if len(fracs) == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, pct(stats.Median(fracs)))
		}
		c.AddRow(row...)
	}
	c.Notes = append(c.Notes,
		"paper: for LatGap ≥ 15ms the proportion is almost independent of LatGap")
	return []*Table{a, b, c}, nil
}

// significantSpike reports whether a spike exceeds the stream's mean by the
// threshold (App. I's significance notion).
func significantSpike(a *core.Analysis, sp core.Spike, threshold float64) bool {
	if sp.StreamIdx >= len(a.Streams) {
		return false
	}
	var vals []float64
	for _, pt := range a.Streams[sp.StreamIdx].Points {
		vals = append(vals, pt.Ms)
	}
	if len(vals) == 0 {
		return false
	}
	return sp.Size >= threshold || sp.Size+stats.Mean(vals) >= stats.Mean(vals)+threshold
}

func runFig16(o Options) ([]*Table, error) {
	byGame := sensitivityWorld(o, 1500)
	params := core.DefaultParams()

	// Analyze everything once (MaxSpikes only gates the quality filter).
	var analyses []*core.Analysis
	for _, game := range sortedKeys(byGame) {
		for _, streams := range byGame[game] {
			analyses = append(analyses, core.Analyze(streams, params))
		}
	}

	// Fig. 16a: CDF of the spike proportion per user.
	a := &Table{
		Title:  "Fig. 16a: distribution of spike proportion per {streamer, game}",
		Header: []string{"percentile", "spike share"},
	}
	var fracs []float64
	for _, an := range analyses {
		if an.Discarded {
			continue
		}
		fracs = append(fracs, an.SpikeFraction)
	}
	for _, p := range []float64{50, 75, 90, 95, 99} {
		a.AddRow(fmt.Sprintf("p%.0f", p), pct(stats.Percentile(fracs, p)))
	}
	a.Notes = append(a.Notes, "paper: the vast majority of users have low spike proportions")

	// Fig. 16b: proportion of spikes and of data points discarded as
	// MaxSpikes varies (users over the limit are dropped).
	b := &Table{
		Title:  "Fig. 16b: data discarded by the MaxSpikes quality filter",
		Header: []string{"MaxSpikes", "% spikes discarded", "% points discarded"},
	}
	// Fig. 16c: spikes and shared anomalies detected vs MaxSpikes.
	c := &Table{
		Title:  "Fig. 16c: spikes and shared anomalies surviving the filter",
		Header: []string{"MaxSpikes", "spikes kept", "shared anomalies"},
	}
	cfgShared := core.DefaultSharedAnomalyConfig()
	for _, maxSpikes := range []float64{0.05, 0.15, 0.25, 0.5, 0.75} {
		var totalSpikes, keptSpikes, totalPts, keptPts int
		var kept []*core.Analysis
		for _, an := range analyses {
			if an.Discarded {
				continue
			}
			nSpikes := len(an.Spikes)
			totalSpikes += nSpikes
			totalPts += an.TotalPoints
			if an.SpikeFraction < maxSpikes {
				keptSpikes += nSpikes
				keptPts += an.TotalPoints
				kept = append(kept, an)
			}
		}
		if totalPts == 0 {
			continue
		}
		label := pct(maxSpikes)
		b.AddRow(label,
			pct(1-float64(keptSpikes)/maxFloat(float64(totalSpikes), 1)),
			pct(1-float64(keptPts)/float64(totalPts)))
		shared := core.DetectAllSharedAnomalies(kept, cfgShared)
		c.AddRow(label, itoa(keptSpikes), itoa(len(shared)))
	}
	b.Notes = append(b.Notes,
		"paper: lowering MaxSpikes discards many spikes but few data points")
	return []*Table{a, b, c}, nil
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
