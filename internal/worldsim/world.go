// Package worldsim generates the synthetic ground-truth world that stands
// in for the live Twitch ecosystem: streamers with true locations drawn
// from a streaming-popularity-weighted geography, per-{streamer, game}
// latency processes derived from corrected distance to the primary server
// plus regional infrastructure disparities, session schedules with the
// 5-minute thumbnail cadence, latency spikes, spike-driven server and game
// changes (the §6 behaviour model), social profiles (Twitch descriptions,
// Twitter/Steam accounts with backlinks), and thumbnail rendering with the
// corruption modes of Fig. 6 (low contrast, occlusion, clock overlays).
//
// Everything is deterministic given the Seed; every quantity the paper can
// only estimate (true location, true latency, which extraction is wrong)
// is known exactly here, so error rates are measurable.
package worldsim

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"

	"tero/internal/games"
	"tero/internal/geo"
)

// Config parameterizes world generation.
type Config struct {
	Seed      int64
	Streamers int
	// Start and Days bound the observation period.
	Start time.Time
	Days  int
	// LocatableFrac is the fraction of streamers whose profiles carry any
	// location signal at all (the paper locates only 2.77%; most profiles
	// simply say nothing about location).
	LocatableFrac float64
	// ProblemFrac is the fraction of streamers with chronically unstable
	// connections (only unstable segments; discarded by §3.3.1).
	ProblemFrac float64
	// MoverFrac is the fraction of streamers who change location once
	// during the period (§3.1.1).
	MoverFrac float64
	// SharedEvent, when set, injects a shared-infrastructure problem: all
	// streamers of one game see extra latency during a window (the Nov-16
	// game-release overload of §4.2.3).
	SharedEvent *SharedEvent
	// CadenceSec is the thumbnail cadence in seconds (Twitch: 300). The
	// paper's §2.2 names denser per-streamer data as a future direction;
	// lowering this simulates extracting latency from the video stream
	// itself instead of thumbnails.
	CadenceSec float64
}

// SharedEvent is a global latency event affecting one game.
type SharedEvent struct {
	GameSlug string
	Start    time.Time
	Duration time.Duration
	ExtraMs  float64
}

// active reports whether the event applies to game g at time t.
func (e *SharedEvent) active(slug string, t time.Time) bool {
	return e != nil && e.GameSlug == slug &&
		!t.Before(e.Start) && t.Before(e.Start.Add(e.Duration))
}

// DefaultConfig returns a laptop-scale world.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		Streamers:     2000,
		Start:         time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC),
		Days:          7,
		LocatableFrac: 0.35,
		ProblemFrac:   0.02,
		MoverFrac:     0.01,
		CadenceSec:    300,
	}
}

// Streamer is one synthetic streamer with full ground truth.
type Streamer struct {
	ID       string
	Username string
	// Place is the true location (city- or region-level gazetteer entry).
	Place *geo.Place
	// MovedTo is non-nil for movers: the place after MoveAt.
	MovedTo *geo.Place
	MoveAt  time.Time
	// Games the streamer plays, primary first.
	Games []*games.Game
	// AccessExtra is the residential access latency contribution in ms.
	AccessExtra float64
	// JitterStd is the per-point latency noise.
	JitterStd float64
	// SpikeRatePerHour is the rate of latency spikes.
	SpikeRatePerHour float64
	// Problem marks chronically unstable connections.
	Problem bool
	// Profile is the streamer's social surface.
	Profile Profile
	// ProfileAfterMove is the refreshed profile a mover publishes after
	// relocating (§3.1.1: "the streamer was indeed advertising a new
	// location"); nil for non-movers.
	ProfileAfterMove *Profile
	// rngSeed derives per-streamer deterministic randomness.
	rngSeed int64
}

// PlaceAt returns the true place at time t (movers change once).
func (s *Streamer) PlaceAt(t time.Time) *geo.Place {
	if s.MovedTo != nil && t.After(s.MoveAt) {
		return s.MovedTo
	}
	return s.Place
}

// ProfileAt returns the profile visible at time t: movers advertise their
// new location once they have moved.
func (s *Streamer) ProfileAt(t time.Time) Profile {
	if s.ProfileAfterMove != nil && t.After(s.MoveAt) {
		return *s.ProfileAfterMove
	}
	return s.Profile
}

// Profile is what the streamer exposes publicly.
type Profile struct {
	// Description is the Twitch description (may embed location).
	Description string
	// DescriptionHasLocation marks ground truth for Table 3 accounting.
	DescriptionHasLocation bool
	// CountryTag is the Twitch country-level tag ("" = none).
	CountryTag string
	// Twitter/Steam presence.
	HasTwitter               bool
	TwitterUsername          string
	TwitterBacklink          bool // profile links back to the Twitch account
	TwitterLocation          string
	TwitterLocationHasSignal bool
	HasSteam                 bool
	SteamUsername            string
	SteamBacklink            bool
	// SteamCountry is the Steam profile's country field (Steam exposes
	// location at country granularity); empty when unset.
	SteamCountry string
	// Impersonator: a different person holds the same Twitter username
	// (with a backlink!) and a different location — the mapping error mode.
	Impersonator         bool
	ImpersonatorLocation string
	ImpersonatorPlace    *geo.Place
}

// World is the generated population.
type World struct {
	Cfg       Config
	Gaz       *geo.Gazetteer
	Streamers []*Streamer
	byID      map[string]*Streamer
}

// ByID returns a streamer by ID.
func (w *World) ByID(id string) *Streamer { return w.byID[id] }

// gameWeights matches the paper's mix (LoL dominates, Among Us/Lost Ark
// niche — Table 5 observation counts).
var gameWeights = map[string]float64{
	"lol": 0.30, "cod": 0.17, "genshin": 0.07, "tft": 0.045,
	"dota2": 0.06, "amongus": 0.015, "lostark": 0.012, "apex": 0.12,
	"valorant": 0.21,
}

// PlaceAlloc pins a number of streamers to a named gazetteer place,
// used by experiments that need guaranteed coverage of specific locations
// (e.g. 50 League-of-Legends streamers per Fig. 9 location).
type PlaceAlloc struct {
	// PlaceName is resolved against the gazetteer (city or region name).
	PlaceName string
	Country   string
	Count     int
	// GameSlug, when set, pins the streamers' primary game.
	GameSlug string
}

// New generates a world with the population sampled from the global
// streaming-popularity distribution.
func New(cfg Config) *World { return NewCustom(cfg, nil) }

// NewCustom generates a world; the first len(allocs) groups of streamers
// are pinned to the given places (and optionally games), and the remainder
// of cfg.Streamers is sampled from the global distribution.
func NewCustom(cfg Config, allocs []PlaceAlloc) *World {
	gaz := geo.World()
	w := &World{Cfg: cfg, Gaz: gaz, byID: make(map[string]*Streamer)}
	rng := rand.New(rand.NewSource(cfg.Seed))

	places, cum := placeDistribution(gaz)
	total := cum[len(cum)-1]

	// Expand allocations into a pinned list.
	type pin struct {
		place *geo.Place
		game  *games.Game
	}
	var pins []pin
	for _, a := range allocs {
		var p *geo.Place
		if a.Country != "" {
			if p = gaz.City(a.PlaceName, a.Country); p == nil {
				p = gaz.Region(a.PlaceName, a.Country)
			}
		}
		if p == nil {
			p = gaz.LookupOne(a.PlaceName)
		}
		if p == nil {
			continue
		}
		var g *games.Game
		if a.GameSlug != "" {
			g = games.ByName(a.GameSlug)
		}
		for k := 0; k < a.Count; k++ {
			pins = append(pins, pin{place: p, game: g})
		}
	}
	n := cfg.Streamers
	if len(pins) > n {
		n = len(pins)
	}

	for i := 0; i < n; i++ {
		st := &Streamer{
			ID:      fmt.Sprintf("tw%07d", i+1),
			rngSeed: cfg.Seed*1_000_003 + int64(i),
		}
		st.Username = username(rng, i)
		st.Place = pickPlace(rng, places, cum, total)
		st.Games = pickGames(rng)
		if i < len(pins) {
			st.Place = pins[i].place
			if pins[i].game != nil {
				st.Games = append([]*games.Game{pins[i].game}, st.Games...)
				// Deduplicate if the pinned game was also drawn.
				seen := map[*games.Game]bool{}
				var uniq []*games.Game
				for _, g := range st.Games {
					if !seen[g] {
						seen[g] = true
						uniq = append(uniq, g)
					}
				}
				st.Games = uniq
			}
		}
		st.AccessExtra = accessExtra(rng, st.Place)
		st.JitterStd = 0.8 + rng.Float64()*1.2
		st.SpikeRatePerHour = spikeRate(rng)
		if rng.Float64() < cfg.ProblemFrac {
			st.Problem = true
			st.JitterStd = 25 + rng.Float64()*20
			st.SpikeRatePerHour = 6
		}
		if rng.Float64() < cfg.MoverFrac {
			st.MovedTo = pickPlace(rng, places, cum, total)
			st.MoveAt = cfg.Start.Add(time.Duration(float64(cfg.Days)*24*rng.Float64()*0.6+float64(cfg.Days)*24*0.2) * time.Hour)
		}
		st.Profile = makeProfile(rng, st, cfg.LocatableFrac, places, cum, total)
		if st.MovedTo != nil {
			// The mover republishes their profile from the new place; reuse
			// the same generator with the place swapped.
			moved := *st
			moved.Place = st.MovedTo
			after := makeProfile(rng, &moved, cfg.LocatableFrac, places, cum, total)
			// Identity fields stay: same handle, same backlink habits.
			after.HasTwitter = st.Profile.HasTwitter
			after.TwitterUsername = st.Profile.TwitterUsername
			after.TwitterBacklink = st.Profile.TwitterBacklink
			st.ProfileAfterMove = &after
		}
		w.Streamers = append(w.Streamers, st)
		w.byID[st.ID] = st
	}
	return w
}

// placeDistribution builds the sampling distribution over city and region
// places, weighted by population × the country's streaming popularity.
func placeDistribution(gaz *geo.Gazetteer) ([]*geo.Place, []float64) {
	var places []*geo.Place
	for _, p := range gaz.All(geo.KindCity) {
		places = append(places, p)
	}
	for _, p := range gaz.All(geo.KindRegion) {
		places = append(places, p)
	}
	sort.Slice(places, func(i, j int) bool { return places[i].Name < places[j].Name })
	cum := make([]float64, len(places))
	sum := 0.0
	for i, p := range places {
		weight := float64(p.Pop) / 1e6
		if c := gaz.Country(p.Country); c != nil {
			weight *= c.TwitchWeight
		}
		if weight < 0 {
			weight = 0
		}
		sum += weight
		cum[i] = sum
	}
	return places, cum
}

func pickPlace(rng *rand.Rand, places []*geo.Place, cum []float64, total float64) *geo.Place {
	x := rng.Float64() * total
	i := sort.SearchFloat64s(cum, x)
	if i >= len(places) {
		i = len(places) - 1
	}
	return places[i]
}

func pickGames(rng *rand.Rand) []*games.Game {
	var primary *games.Game
	x := rng.Float64()
	acc := 0.0
	for _, g := range games.All {
		acc += gameWeights[g.Slug]
		if x < acc {
			primary = g
			break
		}
	}
	if primary == nil {
		primary = games.All[0]
	}
	out := []*games.Game{primary}
	// Some streamers rotate between 2-3 games (enables game changes).
	extra := 0
	if r := rng.Float64(); r < 0.35 {
		extra = 1
	} else if r < 0.45 {
		extra = 2
	}
	for len(out) < 1+extra {
		g := games.All[rng.Intn(len(games.All))]
		dup := false
		for _, have := range out {
			if have == g {
				dup = true
			}
		}
		if !dup {
			out = append(out, g)
		}
	}
	return out
}

// hashUint returns a deterministic hash of a string.
func hashUint(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// username builds usernames, most of them brandable and reused across
// platforms (§3.1).
var nameAdj = []string{"shadow", "turbo", "pixel", "neon", "crazy", "silent",
	"mega", "hyper", "lucky", "frost", "ember", "cosmic", "retro", "salty"}
var nameNoun = []string{"wolf", "gamer", "fox", "mage", "sniper", "panda",
	"viper", "ninja", "queen", "rogue", "titan", "ghost", "falcon", "otter"}

func username(rng *rand.Rand, i int) string {
	return fmt.Sprintf("%s%s%03d", nameAdj[rng.Intn(len(nameAdj))],
		nameNoun[rng.Intn(len(nameNoun))], i%1000)
}

func spikeRate(rng *rand.Rand) float64 {
	// Heterogeneous: most streamers spike rarely, a tail spikes often.
	r := rng.Float64()
	switch {
	case r < 0.6:
		return 0.05 + rng.Float64()*0.15
	case r < 0.9:
		return 0.2 + rng.Float64()*0.5
	default:
		return 0.8 + rng.Float64()*1.2
	}
}

// accessExtra draws the residential access contribution; variance depends
// on the country (Italy's wide 25th-75th gap in Fig. 11b comes from here).
func accessExtra(rng *rand.Rand, p *geo.Place) float64 {
	base := 4 + rng.Float64()*6 // 4-10 ms typical
	spread := countrySpread[p.Country]
	if spread == 0 {
		spread = 4
	}
	return base + math.Abs(rng.NormFloat64())*spread
}

// countrySpread is the per-country residential-access variance (ms).
var countrySpread = map[string]float64{
	"Italy":   12,
	"France":  2,
	"Germany": 4, "United States": 5, "Poland": 8, "Brazil": 8,
	"Bolivia": 12, "Greece": 8, "Turkey": 7, "Saudi Arabia": 8,
	"Switzerland": 2, "Netherlands": 2, "South Korea": 1.5, "Japan": 2,
}
