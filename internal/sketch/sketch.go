// Package sketch implements the mergeable quantile sketches behind the
// streaming latency index (DESIGN.md §15): a DDSketch-style log-bucketed
// quantile sketch with *exact*, order-independent merge semantics, plus a
// ring of sliding time-window buckets over the virtual clock.
//
// Determinism is the design constraint everything here bends around. The
// serving tier republishes by delta — only entries whose sketch state
// changed re-render their pre-marshaled bodies — and pins a from-scratch
// rebuild byte-identical to the incremental path. That only works if sketch
// state is a pure function of the reading *multiset*, independent of
// insertion or merge order. So:
//
//   - Bucket counts are integers; merge is bucket-wise integer addition —
//     exactly associative and commutative, unlike merging float summaries.
//   - Sums are kept in fixed point (micro-units, int64), so the mean and
//     standard deviation are derived from integers and never depend on
//     float accumulation order. OCR readings are small integers in ms; the
//     fixed-point representation is exact for them.
//   - Min/max use the commutative lattice operations.
//
// The quantile guarantee is the usual DDSketch one: a value returned for
// any quantile is within relative error Alpha of a true sample value at
// that rank (for values above the zero threshold).
package sketch

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"
)

// Alpha is the relative accuracy of the sketch: every quantile estimate is
// within Alpha of a true sample at that rank. Fixed package-wide so every
// sketch is mergeable with every other.
const Alpha = 0.01

// minTrackable is the smallest positive value with its own bucket; values
// at or below it land in the zero bucket (latencies are >= 1 ms integers,
// so in practice only true zeros land there).
const minTrackable = 1e-3

var (
	gamma   = (1 + Alpha) / (1 - Alpha)
	lnGamma = math.Log(gamma)
	// repScale maps gamma^idx (the bucket's upper bound) to the bucket's
	// representative value: the point minimizing worst-case relative error.
	repScale = 2 / (1 + gamma)
)

// Sketch is one mergeable quantile sketch. The zero value is not usable;
// create with New. Not safe for concurrent mutation.
type Sketch struct {
	counts map[int32]uint64
	zero   uint64 // values <= minTrackable
	n      uint64
	// Fixed-point accumulators: sum in micro-units (v * 1e6), sum of
	// squares in milli-units (v*v * 1e3). Integer adds are exactly
	// associative, so merges in any order produce identical state. The
	// units bound the exact range: |v| <= ~9e3 ms over ~1e7 samples stays
	// far from int64 overflow.
	sumMicros   int64
	sumSqMillis int64
	min, max    float64
}

// New returns an empty sketch.
func New() *Sketch {
	return &Sketch{
		counts: make(map[int32]uint64),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// indexOf maps a value to its log bucket.
func indexOf(v float64) int32 {
	return int32(math.Ceil(math.Log(v) / lnGamma))
}

// rep returns the representative value of bucket idx: within Alpha
// (relative) of every value the bucket covers.
func rep(idx int32) float64 {
	return math.Pow(gamma, float64(idx)) * repScale
}

// Add records one value. Negative values are clamped into the zero bucket
// (latencies cannot be negative; OCR never produces them).
func (s *Sketch) Add(v float64) {
	if v < 0 {
		v = 0
	}
	s.n++
	s.sumMicros += int64(math.Round(v * 1e6))
	s.sumSqMillis += int64(math.Round(v * v * 1e3))
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if v <= minTrackable {
		s.zero++
		return
	}
	s.counts[indexOf(v)]++
}

// Merge folds o into s. Exact and order-independent: bucket counts and
// fixed-point sums add as integers, min/max take the lattice meet/join, so
// any merge tree over the same sketches yields identical state.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.n == 0 {
		return
	}
	for k, c := range o.counts {
		s.counts[k] += c
	}
	s.zero += o.zero
	s.n += o.n
	s.sumMicros += o.sumMicros
	s.sumSqMillis += o.sumSqMillis
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// Subtract returns a new sketch holding s minus part (s must be a merge
// superset of part — the streaming index uses this to derive a window's
// trailing baseline as total−window without re-merging the ring). Counts
// and sums subtract exactly; min/max cannot be un-merged, so they are
// re-derived from the surviving buckets (within Alpha — fine for the
// baseline median/Wasserstein uses this exists for).
func Subtract(s, part *Sketch) *Sketch {
	out := New()
	if s == nil {
		return out
	}
	for k, c := range s.counts {
		out.counts[k] = c
	}
	out.zero, out.n = s.zero, s.n
	out.sumMicros, out.sumSqMillis = s.sumMicros, s.sumSqMillis
	if part != nil {
		for k, c := range part.counts {
			if out.counts[k] <= c {
				delete(out.counts, k)
			} else {
				out.counts[k] -= c
			}
		}
		if out.zero >= part.zero {
			out.zero -= part.zero
		} else {
			out.zero = 0
		}
		if out.n >= part.n {
			out.n -= part.n
		} else {
			out.n = 0
		}
		out.sumMicros -= part.sumMicros
		out.sumSqMillis -= part.sumSqMillis
	}
	// Approximate bounds from the surviving buckets.
	if out.zero > 0 {
		out.min = 0
	}
	for _, idx := range out.sortedIndexes() {
		v := rep(idx)
		if v < out.min {
			out.min = v
		}
		if v > out.max {
			out.max = v
		}
	}
	if out.zero > 0 && out.max < 0 {
		out.max = 0
	}
	return out
}

// Count returns the number of recorded values.
func (s *Sketch) Count() uint64 { return s.n }

// Sum returns the exact sum of recorded values.
func (s *Sketch) Sum() float64 { return float64(s.sumMicros) / 1e6 }

// Mean returns the exact mean (0 when empty).
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.sumMicros) / 1e6 / float64(s.n)
}

// Std returns the population standard deviation derived from the exact
// fixed-point moments (0 when empty).
func (s *Sketch) Std() float64 {
	if s.n == 0 {
		return 0
	}
	mean := s.Mean()
	m2 := float64(s.sumSqMillis) / 1e3 / float64(s.n)
	v := m2 - mean*mean
	if v < 0 {
		v = 0 // fixed-point rounding can dip epsilon-negative
	}
	return math.Sqrt(v)
}

// Min returns the exact minimum (0 when empty).
func (s *Sketch) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact maximum (0 when empty).
func (s *Sketch) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// sortedIndexes returns the populated bucket indexes in ascending order.
func (s *Sketch) sortedIndexes() []int32 {
	idxs := make([]int32, 0, len(s.counts))
	for k := range s.counts {
		idxs = append(idxs, k)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return idxs
}

// Quantile returns the p-th percentile (p in [0, 100]) within relative
// error Alpha of a true sample at that rank. Ranks follow the same
// convention as stats.Percentile: rank = p/100 * (n-1).
func (s *Sketch) Quantile(p float64) float64 {
	if s.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := p / 100 * float64(s.n-1)
	cum := float64(s.zero)
	if cum > rank {
		return 0
	}
	for _, idx := range s.sortedIndexes() {
		cum += float64(s.counts[idx])
		if cum > rank {
			return rep(idx)
		}
	}
	return s.Max() // only reachable via float slack at p=100
}

// ForEach calls fn for every populated bucket in ascending value order:
// first the zero bucket (as value 0), then the log buckets by their
// representative values. The iteration order is deterministic.
func (s *Sketch) ForEach(fn func(v float64, count uint64)) {
	if s.zero > 0 {
		fn(0, s.zero)
	}
	for _, idx := range s.sortedIndexes() {
		fn(rep(idx), s.counts[idx])
	}
}

// CDF returns the fraction of recorded values at or below each edge.
// Edges must be ascending.
func (s *Sketch) CDF(edges []float64) []float64 {
	out := make([]float64, len(edges))
	if s.n == 0 {
		return out
	}
	cum := uint64(0)
	i := 0
	s.ForEach(func(v float64, c uint64) {
		for i < len(edges) && edges[i] < v {
			out[i] = float64(cum) / float64(s.n)
			i++
		}
		cum += c
	})
	for ; i < len(edges); i++ {
		out[i] = float64(cum) / float64(s.n)
	}
	return out
}

// Fingerprint hashes the full sketch state (FNV-64a over the canonical
// serialization: totals, fixed-point moments, exact bounds, then the
// populated buckets in ascending index order). Two sketches built from the
// same value multiset — in any insertion or merge order — fingerprint
// identically; the serving tier derives ETags from it.
func (s *Sketch) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:]) //nolint:errcheck — fnv never fails
	}
	w(s.n)
	w(s.zero)
	w(uint64(s.sumMicros))
	w(uint64(s.sumSqMillis))
	if s.n > 0 {
		w(math.Float64bits(s.min))
		w(math.Float64bits(s.max))
	}
	for _, idx := range s.sortedIndexes() {
		w(uint64(uint32(idx)))
		w(s.counts[idx])
	}
	return h.Sum64()
}

// Wasserstein1 returns the 1-Wasserstein (earth mover's) distance between
// the two sketched distributions, computed exactly over the shared bucket
// representatives (the same merge-the-CDFs walk stats.Wasserstein1 does on
// raw samples, with bucket counts as weights). Within O(Alpha·scale) of
// the sample-level distance. Returns 0 when either side is empty.
func Wasserstein1(a, b *Sketch) float64 {
	if a == nil || b == nil || a.n == 0 || b.n == 0 {
		return 0
	}
	type wpt struct {
		v      float64
		ca, cb uint64
	}
	pts := make(map[int32]*wpt, len(a.counts)+len(b.counts))
	const zeroIdx = math.MinInt32 // sentinel for the zero bucket
	get := func(idx int32, v float64) *wpt {
		p, ok := pts[idx]
		if !ok {
			p = &wpt{v: v}
			pts[idx] = p
		}
		return p
	}
	if a.zero > 0 {
		get(zeroIdx, 0).ca = a.zero
	}
	if b.zero > 0 {
		get(zeroIdx, 0).cb = b.zero
	}
	for idx, c := range a.counts {
		get(idx, rep(idx)).ca = c
	}
	for idx, c := range b.counts {
		get(idx, rep(idx)).cb = c
	}
	ordered := make([]*wpt, 0, len(pts))
	for _, p := range pts {
		ordered = append(ordered, p)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].v < ordered[j].v })

	na, nb := float64(a.n), float64(b.n)
	var fa, fb, dist float64
	prev := ordered[0].v
	for _, p := range ordered {
		dist += math.Abs(fa-fb) * (p.v - prev)
		fa += float64(p.ca) / na
		fb += float64(p.cb) / nb
		prev = p.v
	}
	return dist
}
