package download

import (
	"bytes"
	"testing"
	"time"

	"tero/internal/imaging"
	"tero/internal/kvstore"
	"tero/internal/objstore"
	"tero/internal/twitchsim"
	"tero/internal/worldsim"
)

// harness spins up a platform over a small world plus the download module.
func harness(t *testing.T, streamers int) (*twitchsim.Platform, *Coordinator, []*Downloader, *objstore.Store) {
	t.Helper()
	cfg := worldsim.DefaultConfig(11)
	cfg.Streamers = streamers
	cfg.Days = 1
	world := worldsim.New(cfg)
	platform := twitchsim.New(world)
	t.Cleanup(platform.Close)

	kv := kvstore.New()
	store := objstore.New()
	coord := NewCoordinator(kv, NewAPIClient(platform.URL()))
	var dls []*Downloader
	for i := 0; i < 3; i++ {
		dls = append(dls, NewDownloader(string(rune('A'+i)), kv, store))
	}
	return platform, coord, dls, store
}

// busiestHour returns the hour offset (from world start) with the most
// concurrently live sessions, so tests observe a busy platform regardless
// of how the generated schedule lands.
func busiestHour(world *worldsim.World) time.Duration {
	best, bestN := time.Duration(0), -1
	for h := 0; h < 36; h++ {
		at := world.Cfg.Start.Add(time.Duration(h) * time.Hour)
		n := 0
		for _, st := range world.Streamers {
			for _, gs := range world.Sessions(st) {
				if len(gs.Times) == 0 {
					continue
				}
				if !at.Before(gs.Times[0]) && !at.After(gs.Times[len(gs.Times)-1]) {
					n++
					break
				}
			}
		}
		if n > bestN {
			best, bestN = time.Duration(h)*time.Hour, n
		}
	}
	return best
}

// drive advances virtual time in 1-minute ticks (finer than the 5-minute
// thumbnail cadence, so downloaders are idle between thumbnails and the
// idle-based load balancing of App. A can engage), polling the coordinator
// every 5 minutes and every downloader each tick.
func drive(t *testing.T, platform *twitchsim.Platform, coord *Coordinator, dls []*Downloader, hours float64) {
	t.Helper()
	ticks := int(hours * 60)
	for i := 0; i < ticks; i++ {
		if i%5 == 0 {
			if err := coord.PollOnce(); err != nil {
				t.Fatalf("coordinator: %v", err)
			}
		}
		for _, d := range dls {
			if err := d.PollOnce(platform.Now()); err != nil {
				t.Fatalf("downloader %s: %v", d.ID, err)
			}
		}
		platform.Advance(time.Minute)
	}
}

func TestDownloadPipelineCollectsThumbnails(t *testing.T) {
	platform, coord, dls, store := harness(t, 40)
	// Jump to the busiest window of the generated schedule.
	platform.Advance(busiestHour(platform.World) - time.Hour)
	drive(t, platform, coord, dls, 6)

	total := 0
	for _, d := range dls {
		total += d.Downloads
	}
	if total < 20 {
		t.Fatalf("downloads = %d, want plenty", total)
	}
	if store.Size(ThumbBucket) != total {
		t.Fatalf("stored %d != downloaded %d", store.Size(ThumbBucket), total)
	}
	// Stored thumbnails decode as PGM and carry metadata.
	keys := store.List(ThumbBucket, "")
	o, err := store.Get(ThumbBucket, keys[0])
	if err != nil {
		t.Fatal(err)
	}
	img, err := imaging.DecodePGM(bytes.NewReader(o.Data))
	if err != nil {
		t.Fatalf("bad PGM: %v", err)
	}
	if img.W != 320 || img.H != 180 {
		t.Fatalf("thumb size %dx%d", img.W, img.H)
	}
	for _, field := range []string{"streamer", "game", "at", "login"} {
		if o.Meta[field] == "" {
			t.Fatalf("missing meta %q", field)
		}
	}
}

func TestLoadBalancingSpreadsWork(t *testing.T) {
	platform, coord, dls, _ := harness(t, 150)
	platform.Advance(busiestHour(platform.World) - time.Hour)
	drive(t, platform, coord, dls, 4)
	// At least two downloaders should have adopted streamers.
	busy := 0
	for _, d := range dls {
		if d.Assigned() > 0 || d.Downloads > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d downloaders busy", busy)
	}
}

func TestOfflineDetectionFreesStreamers(t *testing.T) {
	platform, coord, dls, _ := harness(t, 40)
	platform.Advance(busiestHour(platform.World))
	drive(t, platform, coord, dls, 2)
	if coord.ActiveCount() == 0 {
		t.Fatal("nothing active during evening")
	}
	// Fast-forward past the end of the one-day world: every session over.
	platform.Advance(40 * time.Hour)
	drive(t, platform, coord, dls, 1)
	for _, d := range dls {
		if d.Assigned() != 0 {
			t.Fatalf("downloader %s still has %d assignments", d.ID, d.Assigned())
		}
	}
}

func TestCoordinatorCrashRecovery(t *testing.T) {
	platform, coord, dls, store := harness(t, 40)
	platform.Advance(busiestHour(platform.World))
	drive(t, platform, coord, dls, 2)
	active := coord.ActiveCount()
	if active == 0 {
		t.Fatal("no active streamers")
	}
	// Simulate coordinator crash: a new coordinator over the same KV store
	// must not re-enqueue already-active streamers.
	kv := coord.KV
	coord2 := NewCoordinator(kv, coord.API)
	qBefore := kv.LLen("dl:queue")
	if err := coord2.PollOnce(); err != nil {
		t.Fatal(err)
	}
	qAfter := kv.LLen("dl:queue")
	if qAfter > qBefore+active/4 {
		t.Fatalf("recovery re-enqueued massively: %d -> %d", qBefore, qAfter)
	}
	_ = store
}

func TestAPIClientRateLimitRetries(t *testing.T) {
	platform, coord, _, _ := harness(t, 30)
	platform.Advance(busiestHour(platform.World))
	// Hammer the API well past the burst budget: the client's retry logic
	// must absorb the 429s.
	for i := 0; i < 40; i++ {
		if err := coord.PollOnce(); err != nil {
			t.Fatalf("poll %d: %v", i, err)
		}
	}
	if platform.Throttled == 0 {
		t.Fatal("expected throttling to have occurred")
	}
}

func TestUserDescription(t *testing.T) {
	_, coord, _, _ := harness(t, 10)
	login, desc, err := coord.API.UserDescription("tw0000001")
	if err != nil {
		t.Fatal(err)
	}
	if login == "" || desc == "" {
		t.Fatalf("login=%q desc=%q", login, desc)
	}
	if _, _, err := coord.API.UserDescription("nope"); err == nil {
		t.Fatal("missing user should error")
	}
}

func TestAssignmentCodec(t *testing.T) {
	a := Assignment{StreamerID: "x", Login: "l", Game: "g", URL: "http://u"}
	got, err := decodeAssignment(a.encode())
	if err != nil || got != a {
		t.Fatalf("roundtrip = %+v, %v", got, err)
	}
	if _, err := decodeAssignment("{bad"); err == nil {
		t.Fatal("bad json should error")
	}
}
