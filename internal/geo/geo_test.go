package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHaversineKnownDistances(t *testing.T) {
	cases := []struct {
		name                   string
		lat1, lon1, lat2, lon2 float64
		wantKM, tolKM          float64
	}{
		{"Amsterdam-Athens", 52.37, 4.90, 37.98, 23.73, 2160, 100},
		{"Chicago-Honolulu", 41.88, -87.63, 21.31, -157.86, 6790, 150},
		{"same point", 10, 10, 10, 10, 0, 0.001},
		{"equator quarter", 0, 0, 0, 90, math.Pi / 2 * EarthRadiusKM, 1},
	}
	for _, c := range cases {
		got := HaversineKM(c.lat1, c.lon1, c.lat2, c.lon2)
		if math.Abs(got-c.wantKM) > c.tolKM {
			t.Errorf("%s: got %.0f km, want %.0f ± %.0f", c.name, got, c.wantKM, c.tolKM)
		}
	}
}

func TestHaversineProperties(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		lat1 := math.Mod(a, 90)
		lon1 := math.Mod(b, 180)
		lat2 := math.Mod(c, 90)
		lon2 := math.Mod(d, 180)
		d1 := HaversineKM(lat1, lon1, lat2, lon2)
		d2 := HaversineKM(lat2, lon2, lat1, lon1)
		// Symmetric, non-negative, bounded by half circumference.
		return d1 >= 0 && math.Abs(d1-d2) < 1e-9 && d1 <= math.Pi*EarthRadiusKM+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCorrectedDistance(t *testing.T) {
	g := World()
	ams := g.City("Amsterdam", "Netherlands")
	if ams == nil {
		t.Fatal("Amsterdam missing")
	}
	// Streamer in Amsterdam playing on Amsterdam server: corrected distance
	// equals the city's spread, not zero (§3.3.3).
	got := CorrectedDistanceKM(ams, ams)
	if got != ams.SpreadKM || got <= 0 {
		t.Fatalf("self corrected distance = %v, want spread %v", got, ams.SpreadKM)
	}
	// Turkey -> Istanbul should be a few hundred km (paper: 371 km).
	tr := g.Country("Turkey")
	ist := g.City("Istanbul", "Turkey")
	cd := CorrectedDistanceKM(tr, ist)
	if cd < 250 || cd > 800 {
		t.Fatalf("Turkey->Istanbul corrected distance = %.0f, want a few hundred km", cd)
	}
}

func TestLocationString(t *testing.T) {
	l := Location{City: "Athens", Country: "Greece"}
	if got := l.String(); got != "Athens, Greece" {
		t.Fatalf("String() = %q", got)
	}
	if (Location{}).String() != "<unknown>" {
		t.Fatal("zero location string")
	}
	if !(Location{}).IsZero() || l.IsZero() {
		t.Fatal("IsZero")
	}
}

func TestLocationGranularity(t *testing.T) {
	if (Location{Country: "France"}).Granularity() != KindCountry {
		t.Fatal("country granularity")
	}
	if (Location{Region: "Ile-de-France", Country: "France"}).Granularity() != KindRegion {
		t.Fatal("region granularity")
	}
	if (Location{City: "Paris", Region: "Ile-de-France", Country: "France"}).Granularity() != KindCity {
		t.Fatal("city granularity")
	}
}

func TestSubsumesCompatible(t *testing.T) {
	la := Location{City: "Los Angeles", Region: "California", Country: "United States"}
	cal := Location{Region: "California", Country: "United States"}
	usa := Location{Country: "United States"}
	tex := Location{Region: "Texas", Country: "United States"}

	if !cal.Subsumes(la) || !usa.Subsumes(la) || !usa.Subsumes(cal) {
		t.Fatal("expected subsumption")
	}
	if la.Subsumes(cal) {
		t.Fatal("specific must not subsume general")
	}
	if tex.Subsumes(la) || tex.Compatible(la) {
		t.Fatal("Texas is not compatible with LA")
	}
	if !la.Compatible(cal) || !cal.Compatible(la) {
		t.Fatal("compatibility must be symmetric")
	}
	if (Location{}).Subsumes(la) {
		t.Fatal("empty location subsumes nothing")
	}
	if got := cal.MoreComplete(la); got != la {
		t.Fatalf("MoreComplete = %v", got)
	}
	if got := la.MoreComplete(cal); got != la {
		t.Fatalf("MoreComplete (reversed) = %v", got)
	}
}

func TestSubsumesCaseInsensitive(t *testing.T) {
	a := Location{Region: "california", Country: "UNITED STATES"}
	b := Location{City: "Los Angeles", Region: "California", Country: "United States"}
	if !a.Subsumes(b) {
		t.Fatal("subsumption should be case-insensitive")
	}
}

func TestGazetteerLookup(t *testing.T) {
	g := World()
	// Ambiguous name: Paris (France) should rank above Paris (Texas).
	paris := g.Lookup("Paris")
	if len(paris) < 2 {
		t.Fatalf("expected ambiguous Paris, got %d entries", len(paris))
	}
	if paris[0].Country != "France" {
		t.Fatalf("most populous Paris is %s, want France", paris[0].Country)
	}
	// Alias with diacritics.
	if p := g.LookupOne("São Paulo"); p == nil {
		t.Fatal("São Paulo alias lookup failed")
	}
	// Country aliases.
	if g.Country("USA") == nil || g.Country("UK") == nil || g.Country("Korea") == nil {
		t.Fatal("country alias lookup failed")
	}
	if g.Country("Atlantis") != nil {
		t.Fatal("unknown country should be nil")
	}
}

func TestGazetteerResolve(t *testing.T) {
	g := World()
	p := g.Resolve(Location{City: "Chicago", Country: "United States"})
	if p == nil || p.Kind != KindCity || p.Region != "Illinois" {
		t.Fatalf("Resolve Chicago = %+v", p)
	}
	// Region fallback when city unknown.
	p = g.Resolve(Location{City: "Nowhereville", Region: "Texas", Country: "United States"})
	if p == nil || p.Kind != KindRegion || p.Name != "Texas" {
		t.Fatalf("Resolve fallback = %+v", p)
	}
	if g.Resolve(Location{}) != nil {
		t.Fatal("empty location resolves to nil")
	}
}

func TestCanonicalize(t *testing.T) {
	g := World()
	got := g.Canonicalize(Location{City: "chicago", Country: "usa"})
	want := Location{City: "Chicago", Region: "Illinois", Country: "United States"}
	if got != want {
		t.Fatalf("Canonicalize = %+v, want %+v", got, want)
	}
	// Unresolvable location returned unchanged.
	weird := Location{City: "Xyzzy"}
	if got := g.Canonicalize(weird); got != weird {
		t.Fatalf("unresolvable changed: %+v", got)
	}
}

func TestContinentInheritance(t *testing.T) {
	g := World()
	cases := map[string]Continent{
		"Chicago":   NorthAmerica,
		"Sao Paulo": SouthAmerica,
		"Tokyo":     Asia,
		"Berlin":    Europe,
		"Sydney":    Oceania,
		"Lagos":     Africa,
	}
	for name, want := range cases {
		p := g.LookupOne(name)
		if p == nil {
			t.Fatalf("%s missing", name)
		}
		if p.Continent != want {
			t.Errorf("%s continent = %s, want %s", name, p.Continent, want)
		}
	}
	if _, ok := g.ContinentOf(Location{Country: "Atlantis"}); ok {
		t.Fatal("unknown location should have no continent")
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"  São Paulo ":   "sao paulo",
		"Zürich":         "zurich",
		"WASHINGTON":     "washington",
		"St.  Louis":     "st. louis", // collapses inner spaces
		"(Athens)":       "athens",
		"Île-de-France!": "ile-de-france",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegionKeys(t *testing.T) {
	l := Location{City: "Toronto", Region: "Ontario", Country: "Canada"}
	if l.RegionKey() != (Location{Region: "Ontario", Country: "Canada"}) {
		t.Fatal("RegionKey")
	}
	if l.CountryKey() != (Location{Country: "Canada"}) {
		t.Fatal("CountryKey")
	}
	if l.Key() == l.RegionKey().Key() {
		t.Fatal("keys must differ across granularities")
	}
}

func TestGazetteerDataSanity(t *testing.T) {
	g := World()
	if len(g.All(KindCountry)) < 60 {
		t.Fatalf("too few countries: %d", len(g.All(KindCountry)))
	}
	if len(g.All(KindRegion)) < 40 {
		t.Fatalf("too few regions: %d", len(g.All(KindRegion)))
	}
	if len(g.All(KindCity)) < 100 {
		t.Fatalf("too few cities: %d", len(g.All(KindCity)))
	}
	for _, p := range g.Places() {
		if p.Lat < -90 || p.Lat > 90 || p.Lon < -180 || p.Lon > 180 {
			t.Errorf("%s: bad coordinates (%v, %v)", p.Name, p.Lat, p.Lon)
		}
		if p.SpreadKM < 0 {
			t.Errorf("%s: negative spread", p.Name)
		}
		if p.Pop < 0 {
			t.Errorf("%s: negative population", p.Name)
		}
		if p.Kind != KindCountry && p.Country == "" {
			t.Errorf("%s: missing country", p.Name)
		}
		if p.Kind != KindCountry && g.Country(p.Country) == nil {
			t.Errorf("%s: country %q not in gazetteer", p.Name, p.Country)
		}
		if p.Kind == KindCity && p.Region != "" && g.Region(p.Region, p.Country) == nil {
			t.Errorf("%s: region %q not in gazetteer", p.Name, p.Region)
		}
		if p.Kind == KindCountry && (p.InternetFrac <= 0 || p.InternetFrac > 1) {
			t.Errorf("%s: bad internet fraction %v", p.Name, p.InternetFrac)
		}
	}
}

func TestDoughnutMembership(t *testing.T) {
	// Sanity for Fig. 10: the corrected distance from DC to the Chicago
	// server should land in the 500-1000 km doughnut; Texas in 1000-1500.
	g := World()
	chi := g.City("Chicago", "United States")
	dc := g.Region("District of Columbia", "United States")
	dal := g.City("Dallas", "United States")
	dDC := CorrectedDistanceKM(dc, chi)
	dDal := CorrectedDistanceKM(dal, chi)
	if dDC < 500 || dDC > 1000 {
		t.Errorf("DC corrected distance = %.0f, want in [500,1000]", dDC)
	}
	if dDal < 1000 || dDal > 1500 {
		t.Errorf("Dallas corrected distance = %.0f, want in [1000,1500]", dDal)
	}
}
