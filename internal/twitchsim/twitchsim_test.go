package twitchsim

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"tero/internal/imaging"
	"tero/internal/worldsim"
)

func testPlatform(t *testing.T, streamers int) (*Platform, *worldsim.World) {
	t.Helper()
	cfg := worldsim.DefaultConfig(21)
	cfg.Streamers = streamers
	cfg.Days = 1
	world := worldsim.New(cfg)
	p := New(world)
	t.Cleanup(p.Close)
	return p, world
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestStreamsAPIPagination(t *testing.T) {
	p, _ := testPlatform(t, 200)
	// Go to a busy hour.
	p.Advance(25 * time.Hour)

	var all []StreamInfo
	cursor := ""
	pages := 0
	for {
		url := p.URL() + "/helix/streams?first=10"
		if cursor != "" {
			url += "&after=" + cursor
		}
		var resp struct {
			Data       []StreamInfo `json:"data"`
			Pagination struct {
				Cursor string `json:"cursor"`
			} `json:"pagination"`
		}
		getJSON(t, url, &resp)
		all = append(all, resp.Data...)
		pages++
		if resp.Pagination.Cursor == "" {
			break
		}
		cursor = resp.Pagination.Cursor
		if pages > 100 {
			t.Fatal("pagination never terminates")
		}
	}
	if len(all) == 0 {
		t.Skip("no live streams at this hour")
	}
	// No duplicates across pages.
	seen := map[string]bool{}
	for _, s := range all {
		if seen[s.UserID] {
			t.Fatalf("duplicate %s across pages", s.UserID)
		}
		seen[s.UserID] = true
		if s.ThumbnailURL == "" || s.GameName == "" {
			t.Fatalf("incomplete row %+v", s)
		}
	}
}

func TestThumbnailLifecycle(t *testing.T) {
	p, world := testPlatform(t, 150)
	p.Advance(25 * time.Hour)

	// Find a live streamer via the API.
	var resp struct {
		Data []StreamInfo `json:"data"`
	}
	getJSON(t, p.URL()+"/helix/streams?first=100", &resp)
	if len(resp.Data) == 0 {
		t.Skip("nobody live")
	}
	url := resp.Data[0].ThumbnailURL

	// HEAD exposes the next-thumbnail time and sequence.
	req, _ := http.NewRequest(http.MethodHead, url, nil)
	head, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	head.Body.Close()
	if head.StatusCode != http.StatusOK {
		t.Fatalf("HEAD status %d", head.StatusCode)
	}
	next, err := time.Parse(time.RFC3339, head.Header.Get("X-Next-Thumbnail"))
	if err != nil {
		t.Fatalf("bad X-Next-Thumbnail: %v", err)
	}
	if !next.After(p.Now()) {
		t.Fatal("next thumbnail should be in the future")
	}

	// GET decodes as a thumbnail-sized PGM and is byte-stable on re-GET
	// (the CDN overwrites in place, never mutates a published thumbnail).
	read := func() []byte {
		g, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer g.Body.Close()
		body, _ := io.ReadAll(g.Body)
		return body
	}
	b1 := read()
	b2 := read()
	if !bytes.Equal(b1, b2) {
		t.Fatal("thumbnail not deterministic across GETs")
	}
	img, err := imaging.DecodePGM(bytes.NewReader(b1))
	if err != nil || img.W != 320 || img.H != 180 {
		t.Fatalf("bad thumbnail: %v (%dx%d)", err, img.W, img.H)
	}

	// After the streamer's whole world ends, the URL redirects to offline.
	p.Advance(72 * time.Hour)
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	r2, err := noRedirect.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusFound {
		t.Fatalf("offline status %d, want 302", r2.StatusCode)
	}
	_ = world
}

func TestRateLimiting(t *testing.T) {
	p, _ := testPlatform(t, 30)
	// Exhaust the burst budget.
	throttled := false
	for i := 0; i < 100; i++ {
		resp, err := http.Get(p.URL() + "/helix/streams")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			throttled = true
			break
		}
	}
	if !throttled {
		t.Fatal("API never throttled under hammering")
	}
	if p.Throttled == 0 {
		t.Fatal("throttle counter not incremented")
	}
}

func TestUsersEndpoint(t *testing.T) {
	p, world := testPlatform(t, 20)
	st := world.Streamers[0]
	var resp struct {
		Data []struct {
			ID          string `json:"id"`
			Login       string `json:"login"`
			Description string `json:"description"`
		} `json:"data"`
	}
	getJSON(t, p.URL()+"/helix/users?id="+st.ID, &resp)
	if len(resp.Data) != 1 || resp.Data[0].Login != st.Username {
		t.Fatalf("users by id = %+v", resp.Data)
	}
	getJSON(t, p.URL()+"/helix/users?login="+st.Username, &resp)
	if len(resp.Data) != 1 || resp.Data[0].ID != st.ID {
		t.Fatalf("users by login = %+v", resp.Data)
	}
	if resp.Data[0].Description != st.Profile.Description {
		t.Fatal("description mismatch")
	}
}

func TestSocialEndpoints(t *testing.T) {
	p, world := testPlatform(t, 400)
	var withTwitter, withImpersonator *worldsim.Streamer
	for _, st := range world.Streamers {
		if st.Profile.HasTwitter && st.Profile.TwitterUsername == st.Username &&
			st.Profile.TwitterBacklink && !st.Profile.Impersonator && withTwitter == nil {
			withTwitter = st
		}
		if st.Profile.Impersonator && st.Profile.ImpersonatorLocation != "" && withImpersonator == nil {
			withImpersonator = st
		}
	}
	if withTwitter == nil {
		t.Fatal("no twitter streamer in world")
	}
	var tw struct {
		Username string   `json:"username"`
		Location string   `json:"location"`
		Links    []string `json:"links"`
	}
	getJSON(t, p.URL()+"/twitter/"+withTwitter.Profile.TwitterUsername, &tw)
	if len(tw.Links) == 0 {
		t.Fatal("backlink missing")
	}
	if withImpersonator != nil {
		getJSON(t, p.URL()+"/twitter/"+withImpersonator.Profile.TwitterUsername, &tw)
		if tw.Location != withImpersonator.Profile.ImpersonatorLocation {
			t.Fatal("impersonator location not served")
		}
		if len(tw.Links) == 0 {
			t.Fatal("impersonator should still link to the streamer")
		}
	}
	// Missing profile.
	resp, _ := http.Get(p.URL() + "/twitter/ghost")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing profile status %d", resp.StatusCode)
	}
}

func TestAdminClock(t *testing.T) {
	p, world := testPlatform(t, 10)
	before := p.Now()
	resp, err := http.Get(p.URL() + "/admin/advance?by=30m")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := p.Now().Sub(before); got != 30*time.Minute {
		t.Fatalf("advanced %v", got)
	}
	if p.Now() != world.Cfg.Start.Add(30*time.Minute) {
		t.Fatal("clock base")
	}
	// Bad duration is rejected.
	resp, _ = http.Get(p.URL() + "/admin/advance?by=banana")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad duration status %d", resp.StatusCode)
	}
}

func TestTagsServed(t *testing.T) {
	p, world := testPlatform(t, 400)
	p.Advance(25 * time.Hour)
	var resp struct {
		Data []StreamInfo `json:"data"`
	}
	getJSON(t, p.URL()+"/helix/streams?first=100", &resp)
	// At least one live streamer with a country tag should surface it.
	tagged := 0
	for _, row := range resp.Data {
		st := world.ByID(row.UserID)
		if st == nil {
			t.Fatalf("unknown streamer %s", row.UserID)
		}
		if st.Profile.CountryTag != "" {
			if len(row.Tags) == 0 || row.Tags[0] != st.Profile.CountryTag {
				t.Fatalf("tag not served for %s", st.ID)
			}
			tagged++
		} else if len(row.Tags) != 0 {
			t.Fatal("phantom tag")
		}
	}
	t.Logf("live=%d tagged=%d", len(resp.Data), tagged)
}
