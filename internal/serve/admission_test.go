package serve

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestAdmissionInFlight exercises the concurrency limit directly: slots are
// taken and released, and the limit is exact.
func TestAdmissionInFlight(t *testing.T) {
	a := NewAdmission(2, 0, 0)
	r1, ok := a.Admit()
	if !ok {
		t.Fatal("first admit rejected")
	}
	r2, ok := a.Admit()
	if !ok {
		t.Fatal("second admit rejected")
	}
	if _, ok := a.Admit(); ok {
		t.Fatal("third admit allowed past maxInFlight=2")
	}
	if got := a.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	r1()
	if r3, ok := a.Admit(); !ok {
		t.Fatal("admit after release rejected")
	} else {
		r3()
	}
	r2()
	if got := a.InFlight(); got != 0 {
		t.Fatalf("InFlight after releases = %d, want 0", got)
	}
}

// TestAdmissionTokenBucket: a burst of `burst` requests passes, the next is
// rejected, and rejections do not leak in-flight slots.
func TestAdmissionTokenBucket(t *testing.T) {
	a := NewAdmission(100, 1, 3) // 1/s refill is effectively zero within the test
	var releases []func()
	for i := 0; i < 3; i++ {
		r, ok := a.Admit()
		if !ok {
			t.Fatalf("admit %d rejected inside burst", i)
		}
		releases = append(releases, r)
	}
	if _, ok := a.Admit(); ok {
		t.Fatal("admit allowed past exhausted bucket")
	}
	// The rejected request must have released its in-flight slot.
	if got := a.InFlight(); got != 3 {
		t.Fatalf("InFlight after bucket rejection = %d, want 3", got)
	}
	for _, r := range releases {
		r()
	}
	// SetLimits refills the bucket.
	a.SetLimits(100, 1, 2)
	if _, ok := a.Admit(); !ok {
		t.Fatal("admit rejected after SetLimits refilled the bucket")
	}
}

// TestAdmissionConcurrent hammers Admit/release from many goroutines under
// -race and checks the counter returns to zero.
func TestAdmissionConcurrent(t *testing.T) {
	a := NewAdmission(8, 0, 0)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if release, ok := a.Admit(); ok {
					if a.InFlight() > 8 {
						t.Error("in-flight exceeded limit")
					}
					release()
				}
			}
		}()
	}
	wg.Wait()
	if got := a.InFlight(); got != 0 {
		t.Fatalf("InFlight after all releases = %d, want 0", got)
	}
}

// TestServerSheds drives the HTTP layer: with a zero-token gate installed,
// API routes shed 503 + Retry-After while health and metrics stay exempt,
// and serve_shed_total counts the sheds.
func TestServerSheds(t *testing.T) {
	s := testServer(t)
	a := NewAdmission(0, 0.000001, 0) // bucket with (effectively) no tokens
	// Drain the single rounding-granted token, if any.
	a.mu.Lock()
	a.tokens = 0
	a.mu.Unlock()
	s.SetAdmission(a)

	w := do(t, s, "/v1/latency?location="+milanKey+"&game=Fortnite")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("gated latency: status %d, want 503", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}

	// Exempt routes keep answering during the brownout.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		if w := do(t, s, path); w.Code == http.StatusServiceUnavailable {
			t.Errorf("%s shed during brownout; must be exempt", path)
		}
	}

	// The shed was counted against its route.
	m := do(t, s, "/metrics")
	if !strings.Contains(m.Body.String(), `serve_shed_total{route=latency} 1`) {
		t.Errorf("metrics missing latency shed counter:\n%s", m.Body.String())
	}

	// Removing the gate restores service.
	s.SetAdmission(nil)
	if w := do(t, s, "/v1/latency?location="+milanKey+"&game=Fortnite"); w.Code != http.StatusOK {
		t.Errorf("ungated latency: status %d, want 200", w.Code)
	}
}

// TestLoadGenCountsSheds pins the LoadGen overload contract: shed responses
// are recorded as sheds (not server errors) and the run completes its full
// request budget. A near-empty token bucket sheds deterministically —
// unlike an in-flight cap, which needs scheduler-dependent overlap.
func TestLoadGenCountsSheds(t *testing.T) {
	s := testServer(t)
	s.SetAdmission(NewAdmission(0, 1000, 1)) // ~everything past the bucket sheds

	lg := &LoadGen{
		Handlers:          []http.Handler{s},
		Clients:           8,
		RequestsPerClient: 40,
		ShedBackoffCap:    1, // 1ns: keep the test fast
	}
	rep, err := lg.Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Requests != 8*40 {
		t.Fatalf("Requests = %d, want %d (shed must not end the run)", rep.Requests, 8*40)
	}
	if rep.ServerErrors != 0 {
		t.Errorf("ServerErrors = %d, want 0 (sheds are not server errors)", rep.ServerErrors)
	}
	if rep.Shed == 0 {
		t.Error("Shed = 0, want > 0 (320 requests against a ~1-token bucket)")
	}
	if rep.TransportErrs != 0 || rep.ClientErrors != 0 {
		t.Errorf("unexpected errors: transport %d, client %d", rep.TransportErrs, rep.ClientErrors)
	}
	if rep.OK == 0 {
		t.Error("OK = 0: gate admitted nothing")
	}
}
