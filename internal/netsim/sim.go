// Package netsim is a discrete-event network simulator reproducing the
// paper's physical testbed (§4.1, Fig. 3): two play-stations connected to a
// game server, one of them behind a controllable bottleneck loaded with
// iperf-style UDP and TCP background traffic. It provides links with
// drop-tail queues, constant-bit-rate UDP flows, TCP-Reno senders, and a
// game client/server pair whose displayed latency is a windowed average of
// application-layer RTT samples — the mechanism the paper hypothesizes
// behind the few-second lag between network and gaming latency.
package netsim

import (
	"container/heap"
	"time"
)

// Sim is a discrete-event simulator with virtual time.
type Sim struct {
	now    time.Duration
	events eventHeap
	seq    int64
}

// NewSim returns a simulator at virtual time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Schedule runs fn after delay d (>= 0).
func (s *Sim) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.seq++
	heap.Push(&s.events, &event{at: s.now + d, seq: s.seq, fn: fn})
}

// Run processes events until virtual time `until` (inclusive) or until no
// events remain.
func (s *Sim) Run(until time.Duration) {
	for len(s.events) > 0 {
		ev := s.events[0]
		if ev.at > until {
			break
		}
		heap.Pop(&s.events)
		s.now = ev.at
		ev.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.events) }

type event struct {
	at  time.Duration
	seq int64 // FIFO tie-break for simultaneous events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
