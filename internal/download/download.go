// Package download implements Tero's download module (App. A): a
// coordinator that polls the platform API under its rate limit to detect
// streamers going live, and lean downloaders that fetch thumbnails from the
// CDN before they are overwritten. Coordinator and downloaders share state
// exclusively through the key-value store, which also provides crash
// recovery.
//
// Distinct Downloaders may poll concurrently (the pipeline fans them out on
// its worker pool): they coordinate only through the key-value store's
// atomic list/hash operations, and claiming is a single LPop, so a queue
// entry is adopted by exactly one downloader. A single Downloader is not
// safe for concurrent PollOnce calls (it owns its assignment map).
package download

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tero/internal/kvstore"
	"tero/internal/objstore"
	"tero/internal/obs"
)

// Observability: API request/429/retry counters, thumbnail fetch outcome
// counters (downloaded / unchanged / missed / offline) and poll-cycle
// latency feed the obs.Default registry.
var (
	dlog = obs.L("download")

	mAPIRequests     = obs.C("download_api_requests_total")
	mAPI429          = obs.C("download_api_429_total")
	mAPIRetries      = obs.C("download_api_retries_total")
	mAPIExhausted    = obs.C("download_api_retry_exhausted_total")
	mThumbDownloads  = obs.C("download_thumbs_total")
	mThumbUnchanged  = obs.C("download_thumb_unchanged_total")
	mThumbMisses     = obs.C("download_thumb_miss_total")
	mOffline         = obs.C("download_offline_total")
	mDownloaderPolls = obs.C("download_poll_cycles_total")
	mCoordPolls      = obs.C("download_coordinator_polls_total")
	mNewlyLive       = obs.C("download_newly_live_total")
	mQueueDepth      = obs.G("download_queue_depth")
	mActive          = obs.G("download_active_streamers")
)

// Key-value store layout.
const (
	keyActive   = "dl:active"  // hash: streamer id -> assignment JSON
	keyQueue    = "dl:queue"   // list: assignment JSON waiting for a downloader
	keyOffline  = "dl:offline" // list: streamer ids reported offline
	keyClaimed  = "dl:claimed" // hash: streamer id -> downloader id
	ThumbBucket = "thumbs"     // object-store bucket for thumbnails
)

// Assignment describes one streamer a downloader should poll.
type Assignment struct {
	StreamerID string `json:"id"`
	Login      string `json:"login"`
	Game       string `json:"game"`
	URL        string `json:"url"`
}

func (a Assignment) encode() string {
	b, _ := json.Marshal(a)
	return string(b)
}

func decodeAssignment(s string) (Assignment, error) {
	var a Assignment
	err := json.Unmarshal([]byte(s), &a)
	return a, err
}

// APIClient talks to the platform's developer API with 429 handling.
type APIClient struct {
	Base string
	HTTP *http.Client
	// MaxRetries bounds 429 retries per request.
	MaxRetries int
	// RetryWait is the base pause after a 429 (the coordinator "issues
	// these queries in a way that respects the rate limit"). Successive
	// retries back off exponentially from here.
	RetryWait time.Duration
	// MaxRetryWait caps the exponential backoff; 0 means 8×RetryWait.
	MaxRetryWait time.Duration
}

// NewAPIClient returns a client for the platform at base.
func NewAPIClient(base string) *APIClient {
	return &APIClient{
		Base:         strings.TrimRight(base, "/"),
		HTTP:         &http.Client{Timeout: 10 * time.Second},
		MaxRetries:   20,
		RetryWait:    100 * time.Millisecond,
		MaxRetryWait: 800 * time.Millisecond,
	}
}

// retryBackoff returns the pause before retry `attempt` (0-based): an
// exponential backoff from RetryWait capped at MaxRetryWait, with ±50%
// jitter so a fleet of workers released by the same 429 burst does not
// re-stampede the rate limiter in lockstep.
func (c *APIClient) retryBackoff(attempt int) time.Duration {
	base := c.RetryWait
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := c.MaxRetryWait
	if max <= 0 {
		max = 8 * base
	}
	wait := base
	for i := 0; i < attempt && wait < max; i++ {
		wait *= 2
	}
	if wait > max {
		wait = max
	}
	// Jitter in [wait/2, wait*3/2). math/rand's global source is
	// concurrency-safe; jitter affects only real-time sleeps, never data.
	return wait/2 + time.Duration(rand.Int63n(int64(wait)+1))
}

// streamRow mirrors the platform's Get Streams row.
type streamRow struct {
	UserID       string   `json:"user_id"`
	UserLogin    string   `json:"user_login"`
	GameName     string   `json:"game_name"`
	ThumbnailURL string   `json:"thumbnail_url"`
	Tags         []string `json:"tags"`
}

type streamsPage struct {
	Data       []streamRow `json:"data"`
	Pagination struct {
		Cursor string `json:"cursor"`
	} `json:"pagination"`
}

// getJSON fetches a URL with bounded, jittered exponential 429 backoff.
func (c *APIClient) getJSON(url string, out any) error {
	for attempt := 0; ; attempt++ {
		mAPIRequests.Inc()
		resp, err := c.HTTP.Get(url)
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			resp.Body.Close()
			mAPI429.Inc()
			if attempt >= c.MaxRetries {
				mAPIExhausted.Inc()
				dlog.Warn("rate limited, retries exhausted", "url", url, "retries", attempt)
				return fmt.Errorf("download: rate limited after %d retries", attempt)
			}
			wait := c.retryBackoff(attempt)
			mAPIRetries.Inc()
			dlog.Trace("rate limited, backing off", "attempt", attempt, "wait", wait)
			time.Sleep(wait)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return fmt.Errorf("download: %s -> %s", url, resp.Status)
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		resp.Body.Close()
		return err
	}
}

// LiveStreams pages through /helix/streams and returns all live rows.
func (c *APIClient) LiveStreams() ([]streamRow, error) {
	var all []streamRow
	cursor := ""
	for {
		url := c.Base + "/helix/streams?first=100"
		if cursor != "" {
			url += "&after=" + cursor
		}
		var page streamsPage
		if err := c.getJSON(url, &page); err != nil {
			return nil, err
		}
		all = append(all, page.Data...)
		if page.Pagination.Cursor == "" {
			break
		}
		cursor = page.Pagination.Cursor
	}
	return all, nil
}

// UserDescription fetches a streamer's profile description.
func (c *APIClient) UserDescription(id string) (login, description string, err error) {
	var resp struct {
		Data []struct {
			ID          string `json:"id"`
			Login       string `json:"login"`
			Description string `json:"description"`
		} `json:"data"`
	}
	if err := c.getJSON(c.Base+"/helix/users?id="+id, &resp); err != nil {
		return "", "", err
	}
	if len(resp.Data) == 0 {
		return "", "", fmt.Errorf("download: user %s not found", id)
	}
	return resp.Data[0].Login, resp.Data[0].Description, nil
}

// Coordinator detects streamers going live and hands their thumbnail URLs
// to downloaders via the key-value store (App. A).
type Coordinator struct {
	KV  kvstore.KV
	API *APIClient

	// NewlyLive counts streamers enqueued over the coordinator's lifetime.
	NewlyLive int
}

// NewCoordinator builds a coordinator, recovering active-streamer state
// from the key-value store after a crash.
func NewCoordinator(kv kvstore.KV, api *APIClient) *Coordinator {
	return &Coordinator{KV: kv, API: api}
}

// PollOnce queries the API once, enqueues newly live streamers, and
// processes offline notices from downloaders.
func (c *Coordinator) PollOnce() error {
	mCoordPolls.Inc()
	// Offline notices first: free the streamer for future re-detection.
	for {
		id, ok := c.KV.LPop(keyOffline)
		if !ok {
			break
		}
		c.KV.HDel(keyActive, id)
		c.KV.HDel(keyClaimed, id)
	}

	rows, err := c.API.LiveStreams()
	if err != nil {
		dlog.Warn("coordinator poll failed", "err", err)
		return err
	}
	newly := 0
	for _, row := range rows {
		if _, active := c.KV.HGet(keyActive, row.UserID); active {
			continue
		}
		a := Assignment{
			StreamerID: row.UserID,
			Login:      row.UserLogin,
			Game:       row.GameName,
			URL:        row.ThumbnailURL,
		}
		c.KV.HSet(keyActive, row.UserID, a.encode())
		c.KV.RPush(keyQueue, a.encode())
		// Country-level tags feed the location module's tag recovery
		// (App. D.2).
		if len(row.Tags) > 0 {
			c.KV.HSet("tags", row.UserID, row.Tags[0])
		}
		c.NewlyLive++
		newly++
	}
	mNewlyLive.Add(int64(newly))
	mQueueDepth.Set(float64(c.KV.LLen(keyQueue)))
	mActive.Set(float64(len(c.KV.HGetAll(keyActive))))
	if newly > 0 {
		dlog.Debug("coordinator poll", "live_rows", len(rows), "newly_live", newly)
	}
	return nil
}

// ActiveCount returns the number of streamers currently tracked.
func (c *Coordinator) ActiveCount() int {
	return len(c.KV.HGetAll(keyActive))
}

// Downloader fetches thumbnails for its assigned streamers. It is
// deliberately lean: all state handling beyond plain downloading lives in
// the coordinator and the key-value store.
type Downloader struct {
	ID    string
	KV    kvstore.KV
	Store *objstore.Store
	HTTP  *http.Client

	assigned map[string]*tracked

	// Downloads and Misses count fetched and lost thumbnails.
	Downloads, Misses int
}

type tracked struct {
	a       Assignment
	next    time.Time // when the next thumbnail becomes available
	lastSeq string
}

// NewDownloader builds a downloader. The HTTP client must not follow
// redirects: a redirect to the offline thumbnail is the going-offline
// signal.
func NewDownloader(id string, kv kvstore.KV, store *objstore.Store) *Downloader {
	return &Downloader{
		ID: id, KV: kv, Store: store,
		HTTP: &http.Client{
			Timeout: 10 * time.Second,
			CheckRedirect: func(req *http.Request, via []*http.Request) error {
				return http.ErrUseLastResponse
			},
		},
		assigned: make(map[string]*tracked),
	}
}

// Assigned returns the number of streamers this downloader polls.
func (d *Downloader) Assigned() int { return len(d.assigned) }

// PollOnce processes all due assignments at virtual time now, then — if
// idle — claims new streamers from the queue (the idle-based load balancing
// of App. A).
func (d *Downloader) PollOnce(now time.Time) error {
	mDownloaderPolls.Inc()
	due := 0
	for id, tr := range d.assigned {
		if tr.next.After(now) {
			continue
		}
		due++
		if err := d.fetch(id, tr, now); err != nil {
			return err
		}
	}
	if due == 0 {
		// Idle: adopt one new streamer (claiming one at a time keeps the
		// fleet balanced — a single fast downloader cannot drain the whole
		// queue before its peers get a chance).
		if raw, ok := d.KV.LPop(keyQueue); ok {
			if a, err := decodeAssignment(raw); err == nil {
				d.KV.HSet(keyClaimed, a.StreamerID, d.ID)
				tr := &tracked{a: a}
				d.assigned[a.StreamerID] = tr
				if err := d.fetch(a.StreamerID, tr, now); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// fetch HEADs the thumbnail URL, downloads a new thumbnail if one appeared,
// and handles the offline redirect.
func (d *Downloader) fetch(id string, tr *tracked, now time.Time) error {
	req, err := http.NewRequest(http.MethodHead, tr.a.URL, nil)
	if err != nil {
		return err
	}
	resp, err := d.HTTP.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusFound {
		// Offline: drop and notify the coordinator.
		delete(d.assigned, id)
		d.KV.RPush(keyOffline, id)
		mOffline.Inc()
		dlog.Debug("streamer offline", "downloader", d.ID, "streamer", id)
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("download: HEAD %s -> %s", tr.a.URL, resp.Status)
	}
	seq := resp.Header.Get("X-Thumbnail-Seq")
	if next, err := time.Parse(time.RFC3339, resp.Header.Get("X-Next-Thumbnail")); err == nil {
		tr.next = next
	} else {
		tr.next = now.Add(5 * time.Minute)
	}
	if seq == tr.lastSeq {
		// Refresh hit: the CDN still serves the thumbnail we already have.
		mThumbUnchanged.Inc()
		return nil
	}
	// GET the thumbnail body.
	getResp, err := d.HTTP.Get(tr.a.URL)
	if err != nil {
		return err
	}
	defer getResp.Body.Close()
	if getResp.StatusCode == http.StatusFound {
		delete(d.assigned, id)
		d.KV.RPush(keyOffline, id)
		mOffline.Inc()
		return nil
	}
	if getResp.StatusCode != http.StatusOK {
		return fmt.Errorf("download: GET %s -> %s", tr.a.URL, getResp.Status)
	}
	// If the thumbnail was overwritten between HEAD and GET we simply
	// store the newer one; a fully missed window shows up as a seq skip.
	body, err := io.ReadAll(getResp.Body)
	if err != nil {
		return err
	}
	if tr.lastSeq != "" {
		if prev, cur, ok := seqGap(tr.lastSeq, seq); ok && cur > prev+1 {
			gap := cur - prev - 1
			d.Misses += gap
			mThumbMisses.Add(int64(gap))
			dlog.Debug("thumbnail window missed", "downloader", d.ID,
				"streamer", id, "skipped", gap)
		}
	}
	tr.lastSeq = seq
	key := fmt.Sprintf("%s/%s.pgm", id, seq)
	d.Store.Put(ThumbBucket, key, body, map[string]string{
		"streamer": id,
		"login":    tr.a.Login,
		"game":     tr.a.Game,
		"seq":      seq,
		"at":       now.UTC().Format(time.RFC3339),
	})
	d.Downloads++
	mThumbDownloads.Inc()
	return nil
}

func seqGap(prev, cur string) (p, c int, ok bool) {
	p, err1 := strconv.Atoi(prev)
	c, err2 := strconv.Atoi(cur)
	return p, c, err1 == nil && err2 == nil
}
