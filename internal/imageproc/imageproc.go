// Package imageproc implements Tero's image-processing module (§3.2,
// App. E): it takes a thumbnail and a game, and extracts the latency the
// game displays in it, in four steps:
//
//  1. Pre-processing: crop around the game's latency UI, up-scale, blur,
//     threshold (Otsu), and close small gaps.
//  2. OCR: run the three engines on the pre-processed crop.
//  3. Cleanup: per-engine game-specific post-processing (strip the game's
//     label text, convert confusable letters to digits), then 2-of-3
//     voting — agreement of at least two engines yields the primary value;
//     a disagreeing third engine's value is kept as the alternative.
//  4. Reprocessing: if the vote is ambiguous, repeat OCR + cleanup on the
//     raw (non-pre-processed) crop; if still ambiguous, the thumbnail is
//     discarded.
package imageproc

import (
	"strconv"
	"strings"

	"tero/internal/games"
	"tero/internal/imaging"
	"tero/internal/obs"
	"tero/internal/ocr"
)

// distBuckets bins per-character Hamming distances (0 = perfect template
// match); the histogram doubles as a per-engine confidence profile.
var distBuckets = obs.LinearBuckets(0, 2, 12)

// Extraction is the output of the image-processing module for one thumbnail.
type Extraction struct {
	// Value is the primary latency in ms; valid only when OK.
	Value int
	// OK reports whether a latency was extracted.
	OK bool
	// Alt is the alternative value (§3.2 step 4): when exactly two engines
	// agreed, the third engine's differing output. Valid when HasAlt.
	Alt    int
	HasAlt bool
	// Zero reports that the display showed the waiting-lobby placeholder 0
	// (discarded per App. E but distinguished from a plain miss).
	Zero bool
}

// Extractor is a configured image-processing module. It is safe for
// concurrent use once configured: Extract keeps all per-call state on the
// stack and the engines themselves are stateless (the pipeline's worker
// pool runs many extractions against one Extractor). Reconfiguring the
// fields while extractions are in flight is not supported.
type Extractor struct {
	Engines []ocr.Engine
	// Pad is the padding around the game UI crop.
	Pad int
	// Upscale is the nearest-neighbour pre-processing up-scale factor.
	Upscale int
	// BlurSigma is the pre-processing Gaussian blur.
	BlurSigma float64
	// CloseIter is the number of dilate/erode iterations.
	CloseIter int
}

// New returns an Extractor with the paper's default pipeline, running the
// engines on the default bit-packed kernels.
func New() *Extractor {
	return &Extractor{
		Engines:   ocr.Engines(),
		Pad:       4,
		Upscale:   2,
		BlurSigma: 0.5,
		CloseIter: 0,
	}
}

// NewScalar returns the same pipeline on the byte-per-pixel reference
// kernels. It exists for the packed-vs-scalar equivalence tests and
// benchmarks; Extract results are bit-identical to New's.
func NewScalar() *Extractor {
	e := New()
	e.Engines = ocr.ScalarEngines()
	return e
}

// Extract runs the full four-step pipeline on a thumbnail. The crop and the
// pre-processed intermediates are scratch images recycled back to the
// imaging pool before returning.
func (e *Extractor) Extract(thumb *imaging.Gray, game *games.Game) Extraction {
	// Defensive: a nil or degenerate image (a corrupt download that slipped
	// past quarantine) extracts nothing rather than panicking a worker.
	if thumb == nil || game == nil || thumb.W <= 0 || thumb.H <= 0 {
		return Extraction{}
	}
	crop := thumb.Crop(game.UI.CropRect(e.Pad))
	if crop.W == 0 || crop.H == 0 {
		return Extraction{}
	}
	// Step 1-3 on the pre-processed crop.
	scale := e.Upscale
	if scale < 1 {
		scale = 1
	}
	pre := e.preprocess(crop)
	ex, ok := e.voteOn(pre, game, scale)
	if pre != crop {
		imaging.Recycle(pre)
	}
	if !ok {
		// Step 4: reprocess without pre-processing.
		ex, ok = e.voteOn(crop, game, 1)
	}
	imaging.Recycle(crop)
	if ok {
		return ex
	}
	return Extraction{}
}

// preprocess applies the App. E pipeline: up-scale and blur (plus optional
// morphological closing). Binarization is deliberately left to each OCR
// engine: a shared threshold would make the engines see identical bits and
// err identically, destroying the error diversity the 2-of-3 vote needs.
func (e *Extractor) preprocess(crop *imaging.Gray) *imaging.Gray {
	img := crop
	// step replaces the working image, recycling the superseded
	// intermediate (never the caller's crop).
	step := func(next *imaging.Gray) {
		if img != crop {
			imaging.Recycle(img)
		}
		img = next
	}
	if e.Upscale > 1 {
		step(img.ScaleNearest(e.Upscale))
	}
	if e.BlurSigma > 0 {
		step(img.GaussianBlur(e.BlurSigma))
	}
	if e.CloseIter > 0 {
		step(img.Close(e.CloseIter))
	}
	return img
}

// digitWindow returns the x-range of the crop (scaled by `scale`) where the
// latency digits can possibly appear, given the game's UI: for a
// right-anchored display the text's right edge is fixed, so everything left
// of the 3-digit-wide window is label or junk; symmetrically for
// left-anchored displays. This is the §3.2 game-knowledge heuristic that
// rejects characters "where we expected a single latency digit" not to be.
func (e *Extractor) digitWindow(game *games.Game, cropW, scale int) (lo, hi int) {
	adv := 6 * game.UI.Scale * scale // font advance, scaled
	pad := e.Pad * scale
	prefixW := len([]rune(game.UI.Prefix)) * adv
	suffixW := len([]rune(game.UI.Suffix)) * adv
	switch game.UI.Anchor {
	case games.TopRight, games.BottomRight:
		// Text right edge fixed at cropW - pad.
		hi = cropW - pad - suffixW
		lo = hi - 3*adv
	default:
		// Text left edge fixed at pad.
		lo = pad + prefixW
		hi = lo + 3*adv
	}
	return lo, hi
}

// positionalFilter drops recognized characters that lie entirely outside
// the digit window extended by the adjacent label widths — junk overlays
// and, crucially, label glyphs misread as digits ('g' of "Ping" as '9').
func (e *Extractor) positionalFilter(res ocr.Result, game *games.Game, cropW, scale int) ocr.Result {
	if len(res.Chars) == 0 {
		return res
	}
	lo, hi := e.digitWindow(game, cropW, scale)
	adv := 6 * game.UI.Scale * scale
	prefixW := len([]rune(game.UI.Prefix))*adv + adv
	suffixW := len([]rune(game.UI.Suffix))*adv + adv
	keepLo, keepHi := lo-prefixW, hi+suffixW
	var out ocr.Result
	var sb strings.Builder
	for _, c := range res.Chars {
		center := (c.Box.X0 + c.Box.X1) / 2
		// Any character centered outside the plausible text area is junk
		// (custom overlays, subscriber counters).
		if center < keepLo || center > keepHi {
			continue
		}
		// A digit-looking character centered outside the digit window
		// belongs to the label, not the measurement ('g' of "Ping" → '9').
		isDigitish := c.R >= '0' && c.R <= '9'
		if isDigitish && (center < lo || center > hi) {
			continue
		}
		out.Chars = append(out.Chars, c)
		sb.WriteRune(c.R)
	}
	out.Text = sb.String()
	return out
}

// voteOn runs all engines on an image and applies cleanup + 2-of-3 voting.
// The boolean result reports whether the vote was conclusive (including a
// conclusive zero); an inconclusive vote triggers reprocessing.
// scale is the up-scaling factor the image was rendered at (for the
// positional filter's coordinate system).
func (e *Extractor) voteOn(img *imaging.Gray, game *games.Game, scale int) (Extraction, bool) {
	values := make([]int, 0, len(e.Engines))
	for _, eng := range e.Engines {
		res := e.positionalFilter(eng.Recognize(img), game, img.W, scale)
		obs.C(obs.Lbl("ocr_engine_reads_total", "engine", eng.Name())).Inc()
		if v, ok := CleanupResult(res, game); ok {
			values = append(values, v)
			obs.C(obs.Lbl("ocr_engine_accepted_total", "engine", eng.Name())).Inc()
			// Confidence: the match distance of each character the engine
			// committed to (lower = closer to the font template).
			h := obs.H(obs.Lbl("ocr_engine_char_dist", "engine", eng.Name()), distBuckets)
			for _, c := range res.Chars {
				h.Observe(float64(c.Dist))
			}
		}
	}
	// Find a majority value.
	for i := 0; i < len(values); i++ {
		agree := 1
		for j := 0; j < len(values); j++ {
			if j != i && values[j] == values[i] {
				agree++
			}
		}
		if agree < 2 {
			continue
		}
		v := values[i]
		if v == 0 {
			// Lobby placeholder: conclusively zero, discarded (App. E).
			return Extraction{Zero: true}, true
		}
		if v > 999 {
			continue // latency must have at most 3 digits (App. E)
		}
		ex := Extraction{Value: v, OK: true}
		// Exactly two agree out of three valid: keep the third as alternative.
		if agree == 2 && len(values) == 3 {
			for _, o := range values {
				if o != v && o != 0 && o <= 999 {
					ex.Alt = o
					ex.HasAlt = true
					break
				}
			}
		}
		return ex, true
	}
	return Extraction{}, false
}

// confusable maps letters commonly mistaken for digits at low resolution
// back to the digit they most likely were (§3.2: "mistake 8 for B or S,
// 0 for O, 4 for A").
var confusable = map[rune]rune{
	'O': '0', 'o': '0', 'D': '0', 'Q': '0',
	'l': '1', 'I': '1', 'i': '1',
	'Z': '2', 'z': '2',
	'A': '4',
	'S': '5', 's': '5',
	'G': '6', 'b': '6',
	'T': '7',
	'B': '8',
	'g': '9', 'q': '9',
}

// CleanupResult applies the game-specific post-processing of §3.2 step 3 to
// one engine's raw output: strip the characters belonging to the game's
// label text (e.g. "ms" after the digits, "Ping:" before them), convert
// confusable letters in the digit region to digits, and parse the number.
// The boolean is false when no plausible latency remains.
func CleanupResult(res ocr.Result, game *games.Game) (int, bool) {
	runes := []rune(res.Text)
	if len(runes) == 0 {
		return 0, false
	}
	// Noise specks at the edges read as punctuation ('-', '.') would eat
	// the label-alignment budget: trim them first.
	isPunct := func(r rune) bool {
		return r == ' ' || r == ':' || r == '.' || r == '-' || r == '/'
	}
	for len(runes) > 0 && isPunct(runes[0]) {
		runes = runes[1:]
	}
	for len(runes) > 0 && isPunct(runes[len(runes)-1]) {
		runes = runes[:len(runes)-1]
	}
	// Strip label characters from the front (prefix) and back (suffix).
	runes = stripLabel(runes, game.UI.Prefix, false)
	runes = stripLabel(runes, game.UI.Suffix, true)

	// Locate the digit core: the span from the first digit to the last
	// digit. Junk outside the core (noise specks read as stray letters or
	// punctuation) is discarded — the paper's heuristic of deciding which
	// characters "look most like a latency digit" versus other on-screen
	// elements. A letter *inside* the core, however, means the read is
	// unreliable, and the whole result is rejected (conservative).
	first, last := -1, -1
	for i, r := range runes {
		if r >= '0' && r <= '9' {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return 0, false
	}
	// Confusable letters adjacent to the digit span are likely misread
	// digits of the same number: include them in the core.
	for first > 0 {
		if _, ok := confusable[runes[first-1]]; !ok {
			break
		}
		first--
	}
	for last < len(runes)-1 {
		if _, ok := confusable[runes[last+1]]; !ok {
			break
		}
		last++
	}
	var sb strings.Builder
	for _, r := range runes[first : last+1] {
		if r == ' ' || r == ':' || r == '.' || r == '-' || r == '/' {
			continue // split/merge artifacts between digits
		}
		if r >= '0' && r <= '9' {
			sb.WriteRune(r)
			continue
		}
		if d, ok := confusable[r]; ok {
			sb.WriteRune(d)
			continue
		}
		return 0, false
	}
	s := sb.String()
	if s == "" || len(s) > 4 {
		return 0, false
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, false
	}
	return v, true
}

// isLetter reports whether r is an ASCII letter.
func isLetter(r rune) bool {
	return (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

// labelCharMatches reports whether OCR output char c plausibly is label
// character lc: case-insensitive equality, any punctuation/space for
// punctuation/space, or a digit that is the known low-resolution confusion
// of the label letter (e.g. 's' read as '5', 'i' read as '1').
func labelCharMatches(c, lc rune) (match, viaDigit bool) {
	lower := func(r rune) rune {
		if r >= 'A' && r <= 'Z' {
			return r + 32
		}
		return r
	}
	if lower(c) == lower(lc) {
		return true, false
	}
	punct := func(r rune) bool { return r == ' ' || r == ':' || r == '.' || r == '-' }
	if punct(c) && punct(lc) {
		return true, false
	}
	// Digit standing in for a confusably-shaped label letter.
	if c >= '0' && c <= '9' {
		if d, ok := confusable[lc]; ok && d == c {
			return true, true
		}
		if d, ok := confusable[lower(lc)]; ok && d == c {
			return true, true
		}
	}
	return false, false
}

// stripLabel removes from the start (or end, if fromEnd) of runes the
// characters that plausibly belong to the given label text. It aligns the
// OCR output against the label with a two-pointer scan that tolerates
// dropped label characters and letters read as digits; a digit is only
// consumed as a label character if at least one genuine letter of the label
// also matches (so a bare measurement like "45" never loses its trailing
// "5" to a label "ms").
func stripLabel(runes []rune, label string, fromEnd bool) []rune {
	lab := []rune(label)
	if len(lab) == 0 || len(runes) == 0 {
		return runes
	}
	stripped := 0    // committed strip count
	provisional := 0 // digits matched via confusion, pending a letter match
	li := 0          // label characters consumed
	bailed := false  // the measurement digits stopped the scan
	for stripped+provisional < len(runes) && li < len(lab) {
		var c, lc rune
		if fromEnd {
			c = runes[len(runes)-1-stripped-provisional]
			lc = lab[len(lab)-1-li]
		} else {
			c = runes[stripped+provisional]
			lc = lab[li]
		}
		match, viaDigit := labelCharMatches(c, lc)
		switch {
		case match && viaDigit:
			provisional++
			li++
		case match:
			// A genuine label character: commit it and any provisional digits.
			stripped += provisional + 1
			provisional = 0
			li++
		case c >= '0' && c <= '9':
			// A real digit that matches nothing: the measurement starts here.
			bailed = true
		case isLetter(c) && isLetter(lc):
			// A mangled label letter ('P' read as 'F'): substitute — consume
			// both, committing any provisional digits before it.
			stripped += provisional + 1
			provisional = 0
			li++
		default:
			// A dropped label character: skip one label char.
			li++
		}
		if bailed {
			break
		}
	}
	// Provisional digits at the label's inner edge (e.g. the 'g' of
	// "Ping " read as '9', with only the space left unmatched) are still
	// label characters: commit them when every remaining label character is
	// punctuation, which OCR does not emit.
	if provisional > 0 {
		punctOnly := true
		for k := li; k < len(lab); k++ {
			var lc rune
			if fromEnd {
				lc = lab[len(lab)-1-k]
			} else {
				lc = lab[k]
			}
			if !(lc == ' ' || lc == ':' || lc == '.' || lc == '-') {
				punctOnly = false
				break
			}
		}
		if punctOnly {
			stripped += provisional
		}
	}
	if fromEnd {
		return runes[:len(runes)-stripped]
	}
	return runes[stripped:]
}
