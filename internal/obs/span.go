package obs

import (
	"sync/atomic"
	"time"
)

// A Span times one pipeline stage. StartSpan begins the clock; End records
// the duration into the stage's histogram (`span_seconds{stage=...}` in the
// Default registry) and, when the global log level admits trace, emits a
// trace line. A Span is single-use; End is idempotent and safe to call from
// several goroutines concurrently — exactly one call records (the first to
// win the CAS), the rest return 0.
type Span struct {
	stage string
	start time.Time
	ended atomic.Bool
}

var spanLog = L("span")

// StartSpan begins timing a named stage.
func StartSpan(stage string) *Span {
	return &Span{stage: stage, start: time.Now()}
}

// End stops the span, records its duration and returns it. The duration is
// clamped to be non-negative (the monotonic clock makes this a formality).
// Concurrent and repeated End calls are safe: the atomic CAS lets exactly
// one caller through, so fan-out code with deferred ends cannot double-
// record or race.
func (s *Span) End() time.Duration {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return 0
	}
	d := time.Since(s.start)
	if d < 0 {
		d = 0
	}
	H(Lbl("span_seconds", "stage", s.stage), DurationBuckets).Observe(d.Seconds())
	if spanLog.Enabled(LevelTrace) {
		spanLog.Trace("span", "stage", s.stage, "dur", d)
	}
	return d
}

// Stage returns the span's stage name.
func (s *Span) Stage() string { return s.stage }

// Start returns when the span started.
func (s *Span) Start() time.Time { return s.start }

// Time runs fn inside a span — shorthand for StartSpan + defer End.
func Time(stage string, fn func()) time.Duration {
	sp := StartSpan(stage)
	fn()
	return sp.End()
}
