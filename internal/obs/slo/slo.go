// Package slo declares service-level objectives over obs metrics and
// evaluates multi-window burn rates against them.
//
// An Objective pairs an SLI — a cumulative (good, total) event-count
// source — with a target good-ratio and a set of look-back windows. Each
// Evaluate call appends a cumulative sample and, per window, computes the
// burn rate: the window's bad-ratio divided by the error budget (1 −
// target). Burn 1 means the budget is being consumed exactly at the rate
// that exhausts it over the SLO period; multi-window alerting fires only
// when a short and a long window both burn hot, which is what
// Status.Healthy checks.
//
// Windows run on the objective's clock: wall time for serving SLOs,
// virtual time for pipeline freshness (the pipeline's world advances in
// virtual minutes per wall second, so a wall-clock window would be
// meaningless there).
//
// Evaluation is cheap (a handful of atomic reads and a ring append) and
// surfaced as gauges in the obs.Default registry —
// slo_good_ratio{slo=…}, slo_burn_rate{slo=…,window=…} — so /metrics and
// readyz expose the same numbers.
package slo

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"tero/internal/obs"
)

// SLI is a cumulative service-level indicator: monotonically non-
// decreasing counts of good and total events since process start.
type SLI interface {
	Sample() (good, total float64)
}

// CounterRatio is an SLI over good/bad counter reads (total = good+bad).
type CounterRatio struct {
	Good func() float64
	Bad  func() float64
}

func (c CounterRatio) Sample() (good, total float64) {
	g, b := c.Good(), c.Bad()
	return g, g + b
}

// HistogramThreshold is an SLI over an obs.Histogram: an observation is
// good when ≤ Threshold. Threshold should sit on a bucket boundary — the
// count is then exact, not interpolated.
type HistogramThreshold struct {
	H         *obs.Histogram
	Threshold float64
}

func (h HistogramThreshold) Sample() (good, total float64) {
	return float64(h.H.CountLE(h.Threshold)), float64(h.H.Count())
}

// sample is one cumulative observation.
type sample struct {
	at          time.Time
	good, total float64
}

// maxSamples bounds each objective's ring; at one Evaluate per virtual
// tick this covers hours of history, far past the longest window.
const maxSamples = 1024

// Objective is one declared SLO.
type Objective struct {
	// Name labels the gauges (slo_…{slo=Name}).
	Name string
	// Target is the objective good-ratio, e.g. 0.999.
	Target float64
	// SLI supplies the cumulative counts.
	SLI SLI
	// Windows are the burn-rate look-backs, shortest first.
	Windows []time.Duration
	// Clock supplies now (defaults to time.Now; pipeline-freshness
	// objectives pass the virtual clock).
	Clock func() time.Time

	mu      sync.Mutex
	ring    []sample
	at      int
	gGood   *obs.Gauge
	gBurn   []*obs.Gauge
	gTarget *obs.Gauge
}

// WindowBurn is one window's evaluation.
type WindowBurn struct {
	Window time.Duration
	// Burn is badRatio/errorBudget within the window: 1.0 consumes the
	// budget exactly; 0 when the window saw no events.
	Burn float64
	// Events is the window's total-event delta.
	Events float64
}

// Status is one objective's latest evaluation.
type Status struct {
	Name      string
	Target    float64
	GoodRatio float64 // cumulative, 1.0 when no events yet
	Windows   []WindowBurn
}

// Healthy reports whether every window burns under the threshold.
// Threshold 1 means "consuming budget no faster than sustainable".
func (s Status) Healthy(threshold float64) bool {
	for _, w := range s.Windows {
		if w.Burn >= threshold {
			return false
		}
	}
	return true
}

// String renders the status as one readyz-friendly line.
func (s Status) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "slo %s target=%.4g good=%.4f", s.Name, s.Target, s.GoodRatio)
	for _, w := range s.Windows {
		fmt.Fprintf(&sb, " burn{%s}=%.2f", w.Window, w.Burn)
	}
	if s.Healthy(1) {
		sb.WriteString(" ok")
	} else {
		sb.WriteString(" BURNING")
	}
	return sb.String()
}

// init lazily resolves the objective's gauge handles.
func (o *Objective) init() {
	if o.gGood != nil {
		return
	}
	o.gGood = obs.G(obs.Lbl("slo_good_ratio", "slo", o.Name))
	o.gTarget = obs.G(obs.Lbl("slo_target", "slo", o.Name))
	o.gTarget.Set(o.Target)
	for _, w := range o.Windows {
		o.gBurn = append(o.gBurn,
			obs.G(obs.Lbl("slo_burn_rate", "slo", o.Name, "window", w.String())))
	}
}

// now resolves the objective's clock.
func (o *Objective) now() time.Time {
	if o.Clock != nil {
		return o.Clock()
	}
	return time.Now()
}

// Evaluate samples the SLI, appends to the ring, updates the gauges and
// returns the status. Safe for concurrent use.
func (o *Objective) Evaluate() Status {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.init()

	good, total := o.SLI.Sample()
	now := o.now()
	cur := sample{at: now, good: good, total: total}
	if len(o.ring) < maxSamples {
		o.ring = append(o.ring, cur)
	} else {
		o.ring[o.at] = cur
		o.at = (o.at + 1) % maxSamples
	}

	st := Status{Name: o.Name, Target: o.Target, GoodRatio: 1}
	if total > 0 {
		st.GoodRatio = good / total
	}
	o.gGood.Set(st.GoodRatio)

	budget := 1 - o.Target
	for i, w := range o.Windows {
		base := o.baseSampleLocked(now.Add(-w))
		wb := WindowBurn{Window: w}
		if base != nil {
			dGood, dTotal := good-base.good, total-base.total
			wb.Events = dTotal
			if dTotal > 0 && budget > 0 {
				wb.Burn = ((dTotal - dGood) / dTotal) / budget
			}
		}
		st.Windows = append(st.Windows, wb)
		o.gBurn[i].Set(wb.Burn)
	}
	return st
}

// baseSampleLocked returns the newest sample at or before cutoff, or the
// oldest sample if all are newer (window not yet filled — burn is then
// computed over the available history, which errs toward sensitivity).
func (o *Objective) baseSampleLocked(cutoff time.Time) *sample {
	var best, oldest *sample
	for i := range o.ring {
		s := &o.ring[i]
		if oldest == nil || s.at.Before(oldest.at) {
			oldest = s
		}
		if !s.at.After(cutoff) && (best == nil || s.at.After(best.at)) {
			best = s
		}
	}
	if best != nil {
		return best
	}
	return oldest
}

// Set is a named collection of objectives evaluated together.
type Set struct {
	mu   sync.Mutex
	objs []*Objective
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{} }

// Add registers objectives.
func (s *Set) Add(objs ...*Objective) {
	s.mu.Lock()
	s.objs = append(s.objs, objs...)
	s.mu.Unlock()
}

// Evaluate runs every objective and returns their statuses in add order.
func (s *Set) Evaluate() []Status {
	s.mu.Lock()
	objs := append([]*Objective(nil), s.objs...)
	s.mu.Unlock()
	out := make([]Status, len(objs))
	for i, o := range objs {
		out[i] = o.Evaluate()
	}
	return out
}

// Report renders one line per objective — the readyz appendix.
func (s *Set) Report() string {
	var sb strings.Builder
	for _, st := range s.Evaluate() {
		sb.WriteString(st.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
