// Package experiments contains one runner per table and figure of the
// paper's evaluation (§4-§6 and the appendix), over the synthetic world.
// Each runner returns printable tables; cmd/teroexp and the repository
// benchmarks call into here. DESIGN.md holds the experiment index and
// EXPERIMENTS.md records paper-versus-measured outcomes.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Options tunes experiment scale.
type Options struct {
	// Seed for the synthetic world.
	Seed int64
	// Scale multiplies default workload sizes (1.0 = default; benchmarks
	// use less, full runs more).
	Scale float64
	// Concurrency is the worker parallelism of the CPU-heavy experiment
	// stages (extraction, testbed sweeps) and of the pipeline experiments
	// drive. 0 means GOMAXPROCS; 1 runs fully serially. Results are
	// identical at every setting.
	Concurrency int
	// Faults scales the platform's fault-injection mix for the pipeline
	// experiments (0 = off, 1 = the calibrated recoverable default); the
	// schedule is pinned by FaultSeed. With recoverable rates the output
	// tables are byte-identical to a fault-free run — the chaos experiment
	// verifies exactly that.
	Faults    float64
	FaultSeed int64
	// StoreExec is the path to a terokv binary; when set, the chaos-store
	// experiment adds a leg that runs the store as a real child process
	// and SIGKILLs it mid-run (scripts/check.sh uses this for a true
	// kill-9 smoke). Empty = in-process crash simulation only.
	StoreExec string
	// WorkerExec is the path to a teroworker binary; when set, the
	// dist-scale experiment runs its fleets as real child processes (and
	// SIGKILLs one in the crash leg). Empty = in-process workers over real
	// TCP.
	WorkerExec string
	// DistFleets overrides the dist-scale experiment's fleet sizes
	// (default 1, 2, 4, 8).
	DistFleets []int
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{Seed: 1, Scale: 1} }

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Concurrency > 0 {
		return o.Concurrency
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFor runs fn(i) for i in [0, n) on up to `workers` goroutines and
// waits for completion. fn must restrict itself to index-disjoint writes;
// any ordered side effects belong in a serial merge after the call.
func parallelFor(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

func (o Options) scaled(n int) int {
	if o.Scale <= 0 {
		return n
	}
	v := int(float64(n) * o.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Table is a printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are printed under the table.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString("== " + t.Title + " ==\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// Runner executes one experiment.
type Runner func(Options) ([]*Table, error)

// registry maps experiment IDs to runners; populated by init() functions in
// the per-experiment files.
var registry = map[string]Runner{}

// descriptions holds a one-line summary per experiment.
var descriptions = map[string]string{}

func register(id, desc string, r Runner) {
	registry[id] = r
	descriptions[id] = desc
}

// Run executes the experiment with the given ID.
func Run(id string, o Options) ([]*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (try List())", id)
	}
	return r(o)
}

// List returns all experiment IDs with descriptions, sorted.
func List() [][2]string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([][2]string, len(ids))
	for i, id := range ids {
		out[i] = [2]string{id, descriptions[id]}
	}
	return out
}

// sortedKeys returns the map's keys in sorted order, so loops that consume
// a shared random source are deterministic despite Go's randomized map
// iteration.
func sortedKeys[M map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// pct formats a ratio as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// itoa formats an int.
func itoa(v int) string { return fmt.Sprintf("%d", v) }
