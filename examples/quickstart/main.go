// Quickstart: the smallest end-to-end use of the public pipeline — spin up
// a simulated platform, run the full Tero system for a few virtual hours,
// and print what it extracted.
package main

import (
	"fmt"
	"log"
	"time"

	"tero/internal/core"
	"tero/internal/pipeline"
	"tero/internal/twitchsim"
	"tero/internal/worldsim"
)

func main() {
	// 1. A synthetic world: 80 streamers with ground-truth locations,
	//    latency processes and social profiles.
	cfg := worldsim.DefaultConfig(42)
	cfg.Streamers = 80
	cfg.Days = 1
	cfg.LocatableFrac = 0.7
	world := worldsim.New(cfg)

	// 2. The platform: a real HTTP server with the Twitch-like API, the
	//    thumbnail CDN and social endpoints.
	platform := twitchsim.New(world)
	defer platform.Close()
	fmt.Println("platform:", platform.URL())

	// 3. The Tero pipeline wired against it.
	p := pipeline.New(platform.URL(), 2)

	// 4. Drive six virtual hours of the evening in 2-minute ticks.
	platform.Advance(22 * time.Hour)
	for i := 0; i < 6*30; i++ {
		if err := p.Tick(platform.Now(), i%3 == 0); err != nil {
			log.Fatal(err)
		}
		platform.Advance(2 * time.Minute)
	}
	p.ProcessThumbnails()
	p.LocateStreamers(platform.Now())

	fmt.Printf("thumbnails: %d, measurements: %d, missed: %d\n",
		p.Processed, p.Extracted, p.Missed)
	fmt.Printf("streamers located: %d\n", p.Located)

	// 5. Run the data-analysis module and show a few streams.
	analyses := p.Analyze(core.DefaultParams())
	shown := 0
	for _, a := range analyses {
		if a.Discarded || shown >= 5 {
			continue
		}
		shown++
		fmt.Printf("streamer %s playing %s from %q: %d points kept, %d spikes, %d clusters, static=%v\n",
			a.Streamer[:12], a.Game, a.Location().String(),
			a.KeptPoints, len(a.Spikes), len(a.Clusters), a.Static)
	}
}
