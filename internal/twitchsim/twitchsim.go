// Package twitchsim serves a worldsim.World over HTTP with the semantics
// Tero's download module depends on (App. A): a rate-limited, paginated
// developer API listing live streams, a CDN endpoint where each live
// streamer's latest thumbnail is overwritten every ~5 minutes (miss the
// window and the thumbnail is gone), an offline redirect, and social-media
// profile endpoints (Twitter/Steam) for the location module.
//
// Time is virtual: the platform holds a clock that the test driver
// advances; all HTTP exchanges are real TCP/HTTP.
package twitchsim

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tero/internal/obs"
	"tero/internal/worldsim"
)

// Platform is the simulated streaming + social platform.
type Platform struct {
	World *worldsim.World

	mu       sync.Mutex
	now      time.Time
	sessions map[string][]*worldsim.GenStream // streamer ID -> sessions
	srv      *httptest.Server

	// Rate limiting for the developer API: a refilling token bucket.
	apiTokens    float64
	apiRatePerS  float64
	apiBurst     float64
	lastRefillAt time.Time

	renderOpt worldsim.RenderOptions

	// faults is the active fault injector; nil when injection is off.
	faults atomic.Pointer[faultInjector]

	// cdnLatency is a fixed real-time service delay (ns) added to every
	// CDN request; see SetCDNLatency.
	cdnLatency atomic.Int64

	// Requests counters (observability in tests).
	APIRequests, CDNRequests, Throttled int
	// FaultsInjected counts injected faults of every kind.
	FaultsInjected int
}

// New creates a platform over a world, with the virtual clock at the
// world's start time.
func New(w *worldsim.World) *Platform {
	p := &Platform{
		World:        w,
		now:          w.Cfg.Start,
		sessions:     make(map[string][]*worldsim.GenStream),
		apiRatePerS:  13, // ≈800 requests/minute, Twitch-like
		apiBurst:     30,
		apiTokens:    30,
		lastRefillAt: time.Now(),
		renderOpt:    worldsim.DefaultRenderOptions(),
	}
	for _, st := range w.Streamers {
		p.sessions[st.ID] = w.Sessions(st)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/helix/streams", p.handleStreams)
	mux.HandleFunc("/helix/users", p.handleUsers)
	mux.HandleFunc("/thumb/", p.handleThumb)
	mux.HandleFunc("/offline.pgm", p.handleOffline)
	mux.HandleFunc("/twitter/", p.handleTwitter)
	mux.HandleFunc("/steam/", p.handleSteam)
	mux.HandleFunc("/admin/advance", p.handleAdvance)
	mux.HandleFunc("/admin/now", p.handleNow)
	p.srv = httptest.NewServer(instrument(p.injectFaults(mux)))
	return p
}

// SetFaults installs (or, with a zero/disabled options value, removes) the
// platform's fault-injection layer. Safe to call while serving.
func (p *Platform) SetFaults(opt FaultOptions) {
	if !opt.Enabled() {
		p.faults.Store(nil)
		return
	}
	p.faults.Store(newFaultInjector(opt))
}

// contextWithFaults attaches a request's body/header fault decision.
func contextWithFaults(ctx context.Context, d reqFaults) context.Context {
	return context.WithValue(ctx, faultCtxKey{}, d)
}

// faultsFrom returns the request's fault decision (zero value when none).
func faultsFrom(ctx context.Context) reqFaults {
	d, _ := ctx.Value(faultCtxKey{}).(reqFaults)
	return d
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument is the platform's HTTP middleware: per-route request counters
// split by status class (429 counted apart from other 4xx — it is the
// signal the download module's retry behavior is judged by) and a per-route
// latency histogram.
func instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		route := routeOf(r.URL.Path)
		obs.C(obs.Lbl("twitchsim_http_requests_total",
			"route", route, "class", statusClass(rec.code))).Inc()
		obs.H(obs.Lbl("twitchsim_http_seconds", "route", route),
			obs.DurationBuckets).Observe(time.Since(start).Seconds())
	})
}

// routeOf buckets a request path into a coarse route label.
func routeOf(path string) string {
	switch {
	case strings.HasPrefix(path, "/helix/streams"):
		return "helix_streams"
	case strings.HasPrefix(path, "/helix/users"):
		return "helix_users"
	case strings.HasPrefix(path, "/thumb/"), path == "/offline.pgm":
		return "cdn"
	case strings.HasPrefix(path, "/twitter/"), strings.HasPrefix(path, "/steam/"):
		return "social"
	case strings.HasPrefix(path, "/admin/"):
		return "admin"
	}
	return "other"
}

// statusClass maps an HTTP status to its metric label.
func statusClass(code int) string {
	switch {
	case code == http.StatusTooManyRequests:
		return "429"
	case code >= 200 && code < 300:
		return "2xx"
	case code >= 300 && code < 400:
		return "3xx"
	case code >= 400 && code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// URL returns the platform base URL.
func (p *Platform) URL() string { return p.srv.URL }

// Close shuts the HTTP server down.
func (p *Platform) Close() { p.srv.Close() }

// Now returns the virtual time.
func (p *Platform) Now() time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.now
}

// Advance moves the virtual clock forward.
func (p *Platform) Advance(d time.Duration) {
	p.mu.Lock()
	p.now = p.now.Add(d)
	p.mu.Unlock()
}

// SetCDNLatency adds a fixed real-time service delay to every CDN request
// (thumbnail and offline endpoints). The virtual clock never advances
// during the delay and no data changes, so any latency setting produces
// identical tables — it exists to give each fetch a realistic RTT that a
// distributed worker fleet can overlap, where a single serial process
// cannot.
func (p *Platform) SetCDNLatency(d time.Duration) { p.cdnLatency.Store(int64(d)) }

// cdnWait applies the configured CDN service delay.
func (p *Platform) cdnWait() {
	if d := p.cdnLatency.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// SetRenderOptions overrides thumbnail corruption settings.
func (p *Platform) SetRenderOptions(o worldsim.RenderOptions) { p.renderOpt = o }

// SetAPIRate overrides the developer-API rate limit (requests/second and
// burst) — tests that hammer the API legitimately use this.
func (p *Platform) SetAPIRate(perSecond, burst float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.apiRatePerS = perSecond
	p.apiBurst = burst
	p.apiTokens = burst
}

// liveSession returns the session covering virtual time t, if any, plus the
// index of the latest thumbnail point at or before t.
func (p *Platform) liveSession(id string, t time.Time) (*worldsim.GenStream, int) {
	for _, gs := range p.sessions[id] {
		n := len(gs.Times)
		if n == 0 {
			continue
		}
		// A session is live from its first point until ~5 minutes past its
		// last thumbnail.
		if t.Before(gs.Times[0]) || t.After(gs.Times[n-1].Add(5*time.Minute)) {
			continue
		}
		idx := sort.Search(n, func(i int) bool { return gs.Times[i].After(t) }) - 1
		if idx < 0 {
			idx = 0
		}
		return gs, idx
	}
	return nil, 0
}

// allowAPI consumes one API token (real-time token bucket).
func (p *Platform) allowAPI() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	p.apiTokens += p.apiRatePerS * now.Sub(p.lastRefillAt).Seconds()
	if p.apiTokens > p.apiBurst {
		p.apiTokens = p.apiBurst
	}
	p.lastRefillAt = now
	if p.apiTokens < 1 {
		p.Throttled++
		return false
	}
	p.apiTokens--
	p.APIRequests++
	return true
}

// StreamInfo is one row of the Get Streams response.
type StreamInfo struct {
	UserID       string   `json:"user_id"`
	UserLogin    string   `json:"user_login"`
	GameName     string   `json:"game_name"`
	ThumbnailURL string   `json:"thumbnail_url"`
	StartedAt    string   `json:"started_at"`
	Tags         []string `json:"tags,omitempty"`
}

// streamsResponse is the paginated API envelope.
type streamsResponse struct {
	Data       []StreamInfo `json:"data"`
	Pagination struct {
		Cursor string `json:"cursor,omitempty"`
	} `json:"pagination"`
}

func (p *Platform) handleStreams(w http.ResponseWriter, r *http.Request) {
	if !p.allowAPI() {
		w.Header().Set("Ratelimit-Reset", strconv.FormatInt(time.Now().Add(time.Second).Unix(), 10))
		http.Error(w, `{"error":"Too Many Requests"}`, http.StatusTooManyRequests)
		return
	}
	first, _ := strconv.Atoi(r.URL.Query().Get("first"))
	if first <= 0 || first > 100 {
		first = 20
	}
	after, _ := strconv.Atoi(r.URL.Query().Get("after"))
	now := p.Now()

	// Collect live streams in stable ID order.
	var live []StreamInfo
	for _, st := range p.World.Streamers {
		gs, _ := p.liveSession(st.ID, now)
		if gs == nil {
			continue
		}
		info := StreamInfo{
			UserID:       st.ID,
			UserLogin:    st.Username,
			GameName:     gs.Game.Name,
			ThumbnailURL: p.srv.URL + "/thumb/" + st.ID + ".pgm",
			StartedAt:    gs.Times[0].UTC().Format(time.RFC3339),
		}
		if st.Profile.CountryTag != "" {
			info.Tags = []string{st.Profile.CountryTag}
		}
		live = append(live, info)
	}
	var resp streamsResponse
	end := after + first
	if after < len(live) {
		if end > len(live) {
			end = len(live)
		}
		resp.Data = live[after:end]
	}
	if end < len(live) {
		resp.Pagination.Cursor = strconv.Itoa(end)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// userResponse is the Get Users envelope.
type userResponse struct {
	Data []struct {
		ID          string `json:"id"`
		Login       string `json:"login"`
		Description string `json:"description"`
	} `json:"data"`
}

func (p *Platform) handleUsers(w http.ResponseWriter, r *http.Request) {
	if !p.allowAPI() {
		http.Error(w, `{"error":"Too Many Requests"}`, http.StatusTooManyRequests)
		return
	}
	var resp userResponse
	q := r.URL.Query()
	now := p.Now()
	lookup := func(match func(*worldsim.Streamer) bool) {
		for _, st := range p.World.Streamers {
			if match(st) {
				resp.Data = append(resp.Data, struct {
					ID          string `json:"id"`
					Login       string `json:"login"`
					Description string `json:"description"`
				}{st.ID, st.Username, st.ProfileAt(now).Description})
				return
			}
		}
	}
	if id := q.Get("id"); id != "" {
		lookup(func(st *worldsim.Streamer) bool { return st.ID == id })
	} else if login := q.Get("login"); login != "" {
		lookup(func(st *worldsim.Streamer) bool { return st.Username == login })
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (p *Platform) handleThumb(w http.ResponseWriter, r *http.Request) {
	p.cdnWait()
	p.mu.Lock()
	p.CDNRequests++
	p.mu.Unlock()
	id := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/thumb/"), ".pgm")
	now := p.Now()
	gs, idx := p.liveSession(id, now)
	if gs == nil {
		// Streamer offline: redirect to the generic offline thumbnail.
		http.Redirect(w, r, "/offline.pgm", http.StatusFound)
		return
	}
	// Next-thumbnail time (HEAD uses this to schedule the next download).
	var next time.Time
	if idx+1 < len(gs.Times) {
		next = gs.Times[idx+1]
	} else {
		next = gs.Times[idx].Add(5 * time.Minute)
	}
	flt := faultsFrom(r.Context())
	if flt.dropNext {
		p.countFault("drop_next")
	} else {
		w.Header().Set("X-Next-Thumbnail", next.UTC().Format(time.RFC3339))
	}
	if flt.dropSeq {
		p.countFault("drop_seq")
	} else {
		w.Header().Set("X-Thumbnail-Seq", strconv.Itoa(idx))
	}
	// When this thumbnail window opened — a property of the data, not of
	// the request. Downloaders with WindowStamp use it so re-fetches after
	// crashes stamp identically.
	w.Header().Set("X-Thumbnail-At", gs.Times[idx].UTC().Format(time.RFC3339))
	w.Header().Set("Content-Type", "image/x-portable-graymap")
	if r.Method == http.MethodHead {
		return
	}
	// Render deterministically: seed by streamer and index so a re-GET of
	// the same thumbnail is byte-identical.
	img, _ := worldsim.RenderDeterministic(gs, idx, p.renderOpt)
	var buf bytes.Buffer
	if err := img.EncodePGM(&buf); err != nil {
		http.Error(w, "render error", http.StatusInternalServerError)
		return
	}
	body := buf.Bytes()
	// The digest describes the true thumbnail, computed before any body
	// fault: a downloader that verifies it detects bit corruption and can
	// re-fetch instead of storing a poisoned PGM.
	sum := sha256.Sum256(body)
	w.Header().Set("X-Thumbnail-Digest", hex.EncodeToString(sum[:]))
	// Declare the true length so a truncated body is detectable by the
	// client as an unexpected EOF instead of a silent short read.
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if flt.corrupt {
		p.countFault("corrupt")
		body = append([]byte(nil), body...)
		// Flip bytes across the body, starting inside the PGM header so a
		// non-verifying consumer sees an undecodable image.
		for i := 2; i < len(body); i += 509 {
			body[i] ^= 0xA5
		}
	}
	if flt.truncate {
		p.countFault("truncate")
		body = body[:len(body)/2]
	}
	w.Write(body)
}

func (p *Platform) handleOffline(w http.ResponseWriter, r *http.Request) {
	p.cdnWait()
	w.Header().Set("Content-Type", "image/x-portable-graymap")
	fmt.Fprint(w, "P5\n1 1\n255\n\x00")
}

// twitterResponse is the social profile envelope.
type twitterResponse struct {
	Username string `json:"username"`
	Location string `json:"location"`
	// Links are the profile's outbound links (the backlink check looks for
	// the streamer's Twitch URL here).
	Links []string `json:"links"`
}

func (p *Platform) handleTwitter(w http.ResponseWriter, r *http.Request) {
	username := strings.TrimPrefix(r.URL.Path, "/twitter/")
	now := p.Now()
	for _, st := range p.World.Streamers {
		prof := st.ProfileAt(now)
		if !prof.HasTwitter || prof.TwitterUsername != username {
			continue
		}
		resp := twitterResponse{Username: username}
		if prof.Impersonator {
			// The handle belongs to someone else who still links to the
			// streamer (fan account) — the mapping-error mode.
			resp.Location = prof.ImpersonatorLocation
			resp.Links = []string{"twitch.tv/" + st.Username}
		} else {
			resp.Location = prof.TwitterLocation
			if prof.TwitterBacklink {
				resp.Links = []string{"twitch.tv/" + st.Username}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
		return
	}
	http.NotFound(w, r)
}

// steamResponse is the Steam profile envelope: a backlink for mapping and
// an optional country-granularity location field.
type steamResponse struct {
	Username string   `json:"username"`
	Country  string   `json:"country,omitempty"`
	Links    []string `json:"links"`
}

func (p *Platform) handleSteam(w http.ResponseWriter, r *http.Request) {
	username := strings.TrimPrefix(r.URL.Path, "/steam/")
	now := p.Now()
	for _, st := range p.World.Streamers {
		prof := st.ProfileAt(now)
		if !prof.HasSteam || prof.SteamUsername != username {
			continue
		}
		resp := steamResponse{Username: username, Country: prof.SteamCountry}
		if prof.SteamBacklink {
			resp.Links = []string{"twitch.tv/" + st.Username}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
		return
	}
	http.NotFound(w, r)
}

func (p *Platform) handleAdvance(w http.ResponseWriter, r *http.Request) {
	d, err := time.ParseDuration(r.URL.Query().Get("by"))
	if err != nil || d < 0 {
		http.Error(w, "bad duration", http.StatusBadRequest)
		return
	}
	p.Advance(d)
	fmt.Fprint(w, p.Now().UTC().Format(time.RFC3339))
}

func (p *Platform) handleNow(w http.ResponseWriter, r *http.Request) {
	fmt.Fprint(w, p.Now().UTC().Format(time.RFC3339))
}
