#!/bin/sh
# Serving-tier benchmark harness: builds cmd/teroserve, runs its
# -bench-serve suite (tcp_json baseline, in-process hot JSON/binary paths,
# ring-routed replicas, admission-control brownout sweep) and collects the
# emitted BENCHPOINT lines into a JSON array.
#
# Environment overrides:
#   BENCH_OUT         output file             (default BENCH_serve.json)
#   BENCH_STREAMERS   synthetic population    (default 80)
#   BENCH_DAYS        observation days        (default 1)
#
# The smoke invocation in scripts/check.sh runs a tiny world into a
# throwaway file, just proving the suite still executes end to end.
set -eu

cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_serve.json}"
STREAMERS="${BENCH_STREAMERS:-80}"
DAYS="${BENCH_DAYS:-1}"
TMPDIR="${TMPDIR:-/tmp}"
BIN="$TMPDIR/teroserve-bench-$$"
TXT="$TMPDIR/teroserve-bench-$$.txt"
trap 'rm -f "$BIN" "$TXT"' EXIT

echo "== build cmd/teroserve =="
go build -o "$BIN" ./cmd/teroserve

echo "== serve benchmark suite (streamers $STREAMERS, days $DAYS) =="
"$BIN" -addr 127.0.0.1:0 -streamers "$STREAMERS" -days "$DAYS" -log warn \
    -bench-serve | tee "$TXT"

grep '^BENCHPOINT ' "$TXT" | sed 's/^BENCHPOINT //' | awk '
BEGIN { print "[" }
{ if (NR > 1) printf(",\n"); printf("  %s", $0) }
END { print "\n]" }' > "$OUT"

N=$(grep -c '"phase"' "$OUT")
[ "$N" -gt 0 ] || { echo "no BENCHPOINT lines captured" >&2; exit 1; }
echo "wrote $OUT ($N points)"
