package imaging

import "math"

// ScaleNearest returns the image up- or down-scaled by an integer factor
// using nearest-neighbour sampling (factor >= 1).
func (g *Gray) ScaleNearest(factor int) *Gray {
	if factor <= 1 {
		return g.Clone()
	}
	out := New(g.W*factor, g.H*factor)
	for y := 0; y < out.H; y++ {
		sy := y / factor
		for x := 0; x < out.W; x++ {
			out.Pix[y*out.W+x] = g.Pix[sy*g.W+x/factor]
		}
	}
	return out
}

// ScaleBilinear returns the image resampled to (w, h) with bilinear
// interpolation.
func (g *Gray) ScaleBilinear(w, h int) *Gray {
	out := New(w, h)
	if g.W == 0 || g.H == 0 || w == 0 || h == 0 {
		return out
	}
	xRatio := float64(g.W-1) / float64(max(w-1, 1))
	yRatio := float64(g.H-1) / float64(max(h-1, 1))
	for y := 0; y < h; y++ {
		fy := float64(y) * yRatio
		y0 := int(fy)
		dy := fy - float64(y0)
		y1 := min(y0+1, g.H-1)
		for x := 0; x < w; x++ {
			fx := float64(x) * xRatio
			x0 := int(fx)
			dx := fx - float64(x0)
			x1 := min(x0+1, g.W-1)
			v := float64(g.Pix[y0*g.W+x0])*(1-dx)*(1-dy) +
				float64(g.Pix[y0*g.W+x1])*dx*(1-dy) +
				float64(g.Pix[y1*g.W+x0])*(1-dx)*dy +
				float64(g.Pix[y1*g.W+x1])*dx*dy
			out.Pix[y*w+x] = uint8(v + 0.5)
		}
	}
	return out
}

// GaussianBlur returns the image convolved with a separable Gaussian kernel
// of the given sigma (radius = ceil(3*sigma)).
func (g *Gray) GaussianBlur(sigma float64) *Gray {
	if sigma <= 0 || g.W == 0 || g.H == 0 {
		return g.Clone()
	}
	radius := int(math.Ceil(3 * sigma))
	kernel := make([]float64, 2*radius+1)
	sum := 0.0
	for i := range kernel {
		d := float64(i - radius)
		kernel[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += kernel[i]
	}
	for i := range kernel {
		kernel[i] /= sum
	}
	// Horizontal pass. The intermediate rows are pure scratch: pooled, and
	// fully overwritten before the vertical pass reads them.
	tmp := getF64(g.W * g.H)
	defer putF64(tmp)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			acc := 0.0
			for k, kv := range kernel {
				sx := x + k - radius
				if sx < 0 {
					sx = 0
				}
				if sx >= g.W {
					sx = g.W - 1
				}
				acc += kv * float64(g.Pix[y*g.W+sx])
			}
			tmp[y*g.W+x] = acc
		}
	}
	// Vertical pass.
	out := New(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			acc := 0.0
			for k, kv := range kernel {
				sy := y + k - radius
				if sy < 0 {
					sy = 0
				}
				if sy >= g.H {
					sy = g.H - 1
				}
				acc += kv * tmp[sy*g.W+x]
			}
			out.Pix[y*g.W+x] = uint8(acc + 0.5)
		}
	}
	return out
}

// Threshold returns a binary image: pixels >= t become 255, others 0.
func (g *Gray) Threshold(t uint8) *Gray {
	out := New(g.W, g.H)
	for i, p := range g.Pix {
		if p >= t {
			out.Pix[i] = 255
		}
	}
	return out
}

// OtsuThreshold computes the Otsu threshold of the image: the level that
// maximizes between-class variance of the intensity histogram [Otsu 1979],
// as cited by the paper's pre-processing step (App. E).
func (g *Gray) OtsuThreshold() uint8 {
	hist := g.Histogram256()
	total := len(g.Pix)
	if total == 0 {
		return 128
	}
	var sumAll float64
	for i, c := range hist {
		sumAll += float64(i) * float64(c)
	}
	var (
		wB, wF   float64
		sumB     float64
		maxVar   float64
		bestThr  int
		totalF   = float64(total)
		foundAny bool
	)
	for t := 0; t < 256; t++ {
		wB += float64(hist[t])
		if wB == 0 {
			continue
		}
		wF = totalF - wB
		if wF == 0 {
			break
		}
		sumB += float64(t) * float64(hist[t])
		mB := sumB / wB
		mF := (sumAll - sumB) / wF
		between := wB * wF * (mB - mF) * (mB - mF)
		if between > maxVar {
			maxVar = between
			bestThr = t
			foundAny = true
		}
	}
	if !foundAny {
		return 128
	}
	return uint8(bestThr + 1)
}

// OtsuBinarize thresholds the image at its Otsu level.
func (g *Gray) OtsuBinarize() *Gray { return g.Threshold(g.OtsuThreshold()) }

// Dilate returns the morphological dilation with a 3×3 structuring element
// (max filter), treating 255 as foreground.
func (g *Gray) Dilate() *Gray { return g.morph(true) }

// Erode returns the morphological erosion with a 3×3 structuring element
// (min filter).
func (g *Gray) Erode() *Gray { return g.morph(false) }

func (g *Gray) morph(dilate bool) *Gray {
	out := New(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var best uint8
			if !dilate {
				best = 255
			}
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					sx, sy := x+dx, y+dy
					if sx < 0 || sy < 0 || sx >= g.W || sy >= g.H {
						continue
					}
					v := g.Pix[sy*g.W+sx]
					if dilate && v > best {
						best = v
					}
					if !dilate && v < best {
						best = v
					}
				}
			}
			out.Pix[y*g.W+x] = best
		}
	}
	return out
}

// Close performs n iterations of dilation followed by n of erosion —
// the "dilating and eroding ... to merge disjoint regions" step of App. E.
func (g *Gray) Close(n int) *Gray {
	out := g
	step := func(next *Gray) {
		if out != g {
			Recycle(out)
		}
		out = next
	}
	for i := 0; i < n; i++ {
		step(out.Dilate())
	}
	for i := 0; i < n; i++ {
		step(out.Erode())
	}
	return out
}

// AddNoise adds uniform ±amp noise using the caller's random source (a
// func returning values in [0,1)), clamping to [0,255].
func (g *Gray) AddNoise(amp int, rnd func() float64) *Gray {
	out := g.Clone()
	for i := range out.Pix {
		d := int(rnd()*float64(2*amp+1)) - amp
		v := int(out.Pix[i]) + d
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		out.Pix[i] = uint8(v)
	}
	return out
}

// SaltPepper flips a fraction p of the pixels to either 0 or 255.
func (g *Gray) SaltPepper(p float64, rnd func() float64) *Gray {
	out := g.Clone()
	for i := range out.Pix {
		if rnd() < p {
			if rnd() < 0.5 {
				out.Pix[i] = 0
			} else {
				out.Pix[i] = 255
			}
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
