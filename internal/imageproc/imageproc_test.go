package imageproc

import (
	"math/rand"
	"testing"

	"tero/internal/font"
	"tero/internal/games"
	"tero/internal/imaging"
	"tero/internal/ocr"
)

// renderThumb draws the game's latency display on a synthetic thumbnail.
func renderThumb(g *games.Game, ms int, bg, fg uint8) *imaging.Gray {
	img := imaging.NewFilled(games.ThumbW, games.ThumbH, bg)
	text := g.UI.Format(ms)
	w := font.TextWidth(text, g.UI.Scale)
	h := font.TextHeight(g.UI.Scale)
	x, y := g.UI.TextOrigin(w, h)
	font.Draw(img, x, y, text, g.UI.Scale, fg)
	return img
}

func TestExtractCleanThumbnails(t *testing.T) {
	e := New()
	for _, g := range games.All {
		for _, ms := range []int{7, 45, 110, 238} {
			thumb := renderThumb(g, ms, 25, 230)
			ex := e.Extract(thumb, g)
			if !ex.OK {
				t.Errorf("%s %dms: no extraction", g.Name, ms)
				continue
			}
			if ex.Value != ms {
				t.Errorf("%s: extracted %d, want %d", g.Name, ex.Value, ms)
			}
		}
	}
}

func TestExtractZeroPlaceholder(t *testing.T) {
	e := New()
	g := games.ByName("lol")
	thumb := renderThumb(g, 0, 25, 230)
	ex := e.Extract(thumb, g)
	if ex.OK {
		t.Fatalf("zero display must be discarded, got %d", ex.Value)
	}
	if !ex.Zero {
		t.Fatal("zero display should be flagged Zero")
	}
}

func TestExtractOcclusionDigitDrop(t *testing.T) {
	// Cover the leading digit: all engines agree on the remaining digits,
	// so Tero confidently extracts a wrong value — the dominant error mode
	// (§3.2.1: 68.42% of errors are digit drops).
	e := New()
	g := games.ByName("lol") // displays "45 ms" top-right
	thumb := renderThumb(g, 45, 25, 230)
	text := g.UI.Format(45)
	w := font.TextWidth(text, g.UI.Scale)
	x, y := g.UI.TextOrigin(w, font.TextHeight(g.UI.Scale))
	// Menu overlapping the first digit only.
	thumb.FillRect(imaging.Rect{X0: x - 2, Y0: y - 2, X1: x + font.AdvanceX - 1, Y1: y + 10}, 25)
	ex := e.Extract(thumb, g)
	if !ex.OK {
		t.Fatal("digit-dropped display should still extract")
	}
	if ex.Value != 5 {
		t.Fatalf("extracted %d, want digit-dropped 5", ex.Value)
	}
}

func TestExtractMissesBlankThumb(t *testing.T) {
	e := New()
	g := games.ByName("lol")
	thumb := imaging.NewFilled(games.ThumbW, games.ThumbH, 25)
	if ex := e.Extract(thumb, g); ex.OK {
		t.Fatalf("blank thumb extracted %d", ex.Value)
	}
}

func TestExtractLowContrast(t *testing.T) {
	// Low-contrast text defeats Tessera's fixed threshold but the adaptive
	// engines agree, so the combination still extracts (or at worst
	// misses) — it must never extract a wrong value here.
	e := New()
	g := games.ByName("lol")
	thumb := renderThumb(g, 73, 60, 105)
	ex := e.Extract(thumb, g)
	if ex.OK && ex.Value != 73 {
		t.Fatalf("low contrast produced wrong value %d", ex.Value)
	}
}

func TestExtractUnderNoise(t *testing.T) {
	// Under salt-and-pepper noise, extraction may miss or digit-drop
	// (45 -> 5-style, the error data-analysis later catches as glitches),
	// but it must not fabricate arbitrary values: every wrong extraction
	// must be a subsequence of the true digits.
	e := New()
	g := games.ByName("lol")
	r := rand.New(rand.NewSource(9))
	okCount, correct := 0, 0
	const trials = 60
	for i := 0; i < trials; i++ {
		thumb := renderThumb(g, 48, 25, 215).SaltPepper(0.02, r.Float64)
		ex := e.Extract(thumb, g)
		if !ex.OK {
			continue
		}
		okCount++
		if ex.Value == 48 {
			correct++
		} else if ex.Value > 999 {
			t.Errorf("impossible value %d extracted", ex.Value)
		}
	}
	if okCount == 0 {
		t.Fatal("noise destroyed all extractions")
	}
	if float64(correct) < 0.4*float64(okCount) {
		t.Fatalf("too few correct under noise: %d/%d", correct, okCount)
	}
}

// stubEngine returns canned text, for direct vote-logic tests.
type stubEngine struct {
	name string
	text string
}

func (s stubEngine) Name() string { return s.name }
func (s stubEngine) Recognize(*imaging.Gray) ocr.Result {
	return ocr.Result{Text: s.text}
}

func voteWith(texts ...string) (Extraction, bool) {
	e := New()
	e.Engines = nil
	for i, tx := range texts {
		e.Engines = append(e.Engines, stubEngine{name: string(rune('a' + i)), text: tx})
	}
	img := imaging.NewFilled(8, 8, 0)
	return e.voteOn(img, games.ByName("lol"), 1)
}

func TestVoteAllAgree(t *testing.T) {
	ex, ok := voteWith("45 ms", "45ms", "45")
	if !ok || !ex.OK || ex.Value != 45 || ex.HasAlt {
		t.Fatalf("vote = %+v ok=%v", ex, ok)
	}
}

func TestVoteTwoAgreeThirdAlternative(t *testing.T) {
	// Exactly two agree; the third engine's differing value is kept as the
	// alternative (§3.2 step 4).
	ex, ok := voteWith("45 ms", "45ms", "145 ms")
	if !ok || !ex.OK || ex.Value != 45 {
		t.Fatalf("vote = %+v ok=%v", ex, ok)
	}
	if !ex.HasAlt || ex.Alt != 145 {
		t.Fatalf("alternative = %+v", ex)
	}
}

func TestVoteNoAgreement(t *testing.T) {
	if _, ok := voteWith("45", "46", "47"); ok {
		t.Fatal("three-way disagreement must be inconclusive")
	}
	if _, ok := voteWith("45", "", ""); ok {
		t.Fatal("single opinion must be inconclusive")
	}
	if _, ok := voteWith("", "", ""); ok {
		t.Fatal("no opinions must be inconclusive")
	}
}

func TestVoteZeroAgreement(t *testing.T) {
	ex, ok := voteWith("0 ms", "0ms", "0")
	if !ok || ex.OK || !ex.Zero {
		t.Fatalf("zero vote = %+v ok=%v", ex, ok)
	}
}

func TestVoteRejectsFourDigitAgreement(t *testing.T) {
	if _, ok := voteWith("4512 ms", "4512ms", ""); ok {
		t.Fatal("4-digit latency must be rejected")
	}
}

func TestCleanupResult(t *testing.T) {
	lol := games.ByName("lol") // suffix " ms"
	dota := games.ByName("dota2")
	cod := games.ByName("cod")
	cases := []struct {
		game *games.Game
		text string
		want int
		ok   bool
	}{
		{lol, "45 ms", 45, true},
		{lol, "45ms", 45, true},
		{lol, "45", 45, true},
		{lol, "4S ms", 45, true},   // S -> 5 confusion fixed
		{lol, "B2 ms", 82, true},   // B -> 8
		{lol, "1O7 ms", 107, true}, // O -> 0
		{lol, "", 0, false},
		{lol, "msms", 0, false},
		{dota, "ping: 99", 99, true},
		{dota, "p1ng: 99", 99, true}, // label letter read as digit is still stripped
		{cod, "Latency: 142ms", 142, true},
		{lol, "45x9 ms", 0, false}, // unconvertible letter in digit region
	}
	for _, c := range cases {
		got, ok := CleanupResult(ocr.Result{Text: c.text}, c.game)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Cleanup(%q, %s) = %d,%v want %d,%v", c.text, c.game.Slug, got, ok, c.want, c.ok)
		}
	}
}

func TestStripLabel(t *testing.T) {
	got := string(stripLabel([]rune("ms"), " ms", true))
	if got != "" {
		t.Fatalf("stripLabel suffix = %q", got)
	}
	got = string(stripLabel([]rune("45"), " ms", true))
	if got != "45" {
		t.Fatalf("digits must survive suffix strip: %q", got)
	}
	got = string(stripLabel([]rune("Ping45"), "Ping: ", false))
	if got != "45" {
		t.Fatalf("prefix strip = %q", got)
	}
	if got := string(stripLabel([]rune("abc"), "", false)); got != "abc" {
		t.Fatalf("empty label should not strip: %q", got)
	}
}
