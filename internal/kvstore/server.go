package kvstore

import (
	"bufio"
	"errors"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Server exposes a Store over TCP with RESP framing.
type Server struct {
	store *Store
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") and returns it; the
// actual address is available via Addr.
func Serve(store *Store, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{store: store, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and closes all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		args, err := readCommand(r)
		if err != nil {
			return
		}
		if err := s.dispatch(w, args); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// dispatch executes one command and writes the reply.
func (s *Server) dispatch(w *bufio.Writer, args []string) error {
	if len(args) == 0 {
		return writeError(w, "empty command")
	}
	cmd := strings.ToUpper(args[0])
	wantArgs := func(n int) bool { return len(args) == n }
	switch cmd {
	case "PING":
		return writeSimple(w, "PONG")
	case "SET":
		if !wantArgs(3) {
			return writeError(w, "SET needs key value")
		}
		s.store.Set(args[1], args[2])
		return writeSimple(w, "OK")
	case "SETEX":
		if !wantArgs(4) {
			return writeError(w, "SETEX needs key seconds value")
		}
		secs, err := strconv.Atoi(args[2])
		if err != nil {
			return writeError(w, "bad seconds")
		}
		s.store.SetEx(args[1], args[3], time.Duration(secs)*time.Second)
		return writeSimple(w, "OK")
	case "GET":
		if !wantArgs(2) {
			return writeError(w, "GET needs key")
		}
		if v, ok := s.store.Get(args[1]); ok {
			return writeBulk(w, v)
		}
		return writeNull(w)
	case "DEL":
		if !wantArgs(2) {
			return writeError(w, "DEL needs key")
		}
		if s.store.Del(args[1]) {
			return writeInt(w, 1)
		}
		return writeInt(w, 0)
	case "INCR":
		if !wantArgs(2) {
			return writeError(w, "INCR needs key")
		}
		n, err := s.store.Incr(args[1])
		if err != nil {
			return writeError(w, "not an integer")
		}
		return writeInt(w, n)
	case "KEYS":
		if !wantArgs(2) {
			return writeError(w, "KEYS needs prefix")
		}
		keys := s.store.Keys(args[1])
		if err := writeArray(w, len(keys)); err != nil {
			return err
		}
		for _, k := range keys {
			if err := writeBulk(w, k); err != nil {
				return err
			}
		}
		return nil
	case "HSET":
		if !wantArgs(4) {
			return writeError(w, "HSET needs key field value")
		}
		s.store.HSet(args[1], args[2], args[3])
		return writeInt(w, 1)
	case "HGET":
		if !wantArgs(3) {
			return writeError(w, "HGET needs key field")
		}
		if v, ok := s.store.HGet(args[1], args[2]); ok {
			return writeBulk(w, v)
		}
		return writeNull(w)
	case "HDEL":
		if !wantArgs(3) {
			return writeError(w, "HDEL needs key field")
		}
		s.store.HDel(args[1], args[2])
		return writeInt(w, 1)
	case "HGETALL":
		if !wantArgs(2) {
			return writeError(w, "HGETALL needs key")
		}
		h := s.store.HGetAll(args[1])
		if err := writeArray(w, 2*len(h)); err != nil {
			return err
		}
		for f, v := range h {
			if err := writeBulk(w, f); err != nil {
				return err
			}
			if err := writeBulk(w, v); err != nil {
				return err
			}
		}
		return nil
	case "LPUSH", "RPUSH":
		if len(args) < 3 {
			return writeError(w, cmd+" needs key value...")
		}
		var n int
		if cmd == "LPUSH" {
			n = s.store.LPush(args[1], args[2:]...)
		} else {
			n = s.store.RPush(args[1], args[2:]...)
		}
		return writeInt(w, int64(n))
	case "LPOP", "RPOP":
		if !wantArgs(2) {
			return writeError(w, cmd+" needs key")
		}
		var v string
		var ok bool
		if cmd == "LPOP" {
			v, ok = s.store.LPop(args[1])
		} else {
			v, ok = s.store.RPop(args[1])
		}
		if !ok {
			return writeNull(w)
		}
		return writeBulk(w, v)
	case "LLEN":
		if !wantArgs(2) {
			return writeError(w, "LLEN needs key")
		}
		return writeInt(w, int64(s.store.LLen(args[1])))
	case "LRANGE":
		if !wantArgs(4) {
			return writeError(w, "LRANGE needs key start stop")
		}
		start, err1 := strconv.Atoi(args[2])
		stop, err2 := strconv.Atoi(args[3])
		if err1 != nil || err2 != nil {
			return writeError(w, "bad range")
		}
		vals := s.store.LRange(args[1], start, stop)
		if err := writeArray(w, len(vals)); err != nil {
			return err
		}
		for _, v := range vals {
			if err := writeBulk(w, v); err != nil {
				return err
			}
		}
		return nil
	case "EXPIRE":
		if !wantArgs(3) {
			return writeError(w, "EXPIRE needs key seconds")
		}
		secs, err := strconv.Atoi(args[2])
		if err != nil {
			return writeError(w, "bad seconds")
		}
		if s.store.Expire(args[1], time.Duration(secs)*time.Second) {
			return writeInt(w, 1)
		}
		return writeInt(w, 0)
	default:
		return writeError(w, "unknown command "+cmd)
	}
}

// Client is a RESP client for the server. It is safe for concurrent use;
// commands are serialized over one connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a kvstore server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one command and returns the decoded reply.
func (c *Client) Do(args ...string) (Reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeArray(c.w, len(args)); err != nil {
		return Reply{}, err
	}
	for _, a := range args {
		if err := writeBulk(c.w, a); err != nil {
			return Reply{}, err
		}
	}
	if err := c.w.Flush(); err != nil {
		return Reply{}, err
	}
	rep, err := readReply(c.r)
	if err != nil {
		return Reply{}, err
	}
	if rep.Kind == '-' {
		return rep, errors.New(rep.Str)
	}
	return rep, nil
}

// Get is a convenience wrapper for GET.
func (c *Client) Get(key string) (string, bool, error) {
	rep, err := c.Do("GET", key)
	if err != nil {
		return "", false, err
	}
	if rep.Null {
		return "", false, nil
	}
	return rep.Str, true, nil
}

// Set is a convenience wrapper for SET.
func (c *Client) Set(key, value string) error {
	_, err := c.Do("SET", key, value)
	return err
}
