package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tero/internal/obs"
)

var kvlog = obs.L("kvstore")

// Durability metrics: the AOF/snapshot/replication counters the chaos-store
// experiment and scripts/check.sh assert on after a crash.
var (
	mAofAppends   = obs.C("kvstore_aof_appends_total")
	mAofBytes     = obs.C("kvstore_aof_bytes_total")
	mAofFsyncs    = obs.C("kvstore_aof_fsyncs_total")
	mAofReplayed  = obs.C("kvstore_aof_replayed_total")
	mAofTruncated = obs.C("kvstore_aof_truncated_bytes_total")
	mAofSize      = obs.G("kvstore_aof_size_bytes")
	mSnapshots    = obs.C("kvstore_snapshots_total")
	mSnapCmds     = obs.C("kvstore_snapshot_cmds_total")
	mReplFullSync = obs.C("kvstore_repl_full_syncs_total")
	mReplStreamed = obs.C("kvstore_repl_streamed_total")
	mReplApplied  = obs.C("kvstore_repl_applied_total")
	mReplDropped  = obs.C("kvstore_repl_dropped_replicas_total")
	mReplReplicas = obs.G("kvstore_repl_replicas")
	mReplPending  = obs.G("kvstore_repl_feed_pending")
	mRedials      = obs.C("kvstore_client_redials_total")
)

// Fsync policies for the append-only file.
const (
	// FsyncAlways syncs after every appended command: zero loss on crash.
	FsyncAlways = "always"
	// FsyncInterval flushes+syncs on a background ticker (default 100ms):
	// bounded loss, near-memory write latency.
	FsyncInterval = "interval"
	// FsyncNever leaves syncing to the OS page cache.
	FsyncNever = "never"
)

// PersistOptions configures Open.
type PersistOptions struct {
	// Fsync is one of FsyncAlways, FsyncInterval, FsyncNever
	// (default FsyncInterval).
	Fsync string
	// FsyncEvery is the interval for FsyncInterval (default 100ms).
	FsyncEvery time.Duration
	// CompactEvery rewrites the log as a snapshot after this many appended
	// commands (0 = compact only on explicit Compact calls).
	CompactEvery int
}

func (o *PersistOptions) fill() error {
	switch o.Fsync {
	case "":
		o.Fsync = FsyncInterval
	case FsyncAlways, FsyncInterval, FsyncNever:
	default:
		return fmt.Errorf("kvstore: unknown fsync policy %q", o.Fsync)
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
	return nil
}

// Log file layout: snap-<gen>.resp + aof-<gen>.resp pairs. A snapshot is a
// deterministic RESP command stream reconstructing the store; the AOF of the
// same generation holds everything appended since. Compaction writes the
// next generation's snapshot (rename is the commit point) and switches
// appends to its AOF, so a crash at any instant leaves at least one
// complete generation on disk.
func snapPath(dir string, gen int) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%d.resp", gen))
}

func aofPath(dir string, gen int) string {
	return filepath.Join(dir, fmt.Sprintf("aof-%d.resp", gen))
}

// parseGen extracts the generation from a snap-/aof- file name.
func parseGen(name, prefix string) (int, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".resp") {
		return 0, false
	}
	g, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".resp"))
	if err != nil || g < 1 {
		return 0, false
	}
	return g, true
}

// aofWriter appends RESP-framed commands to the current generation's log
// file. Appends arrive under the store's write lock; mu additionally
// serializes them against the background fsync ticker and Close.
type aofWriter struct {
	dir          string
	opt          PersistOptions
	compactEvery int
	appends      int // since the last compaction

	mu    sync.Mutex
	gen   int
	f     *os.File
	w     *bufio.Writer
	size  int64
	dirty bool
	err   error // first write/sync error, sticky

	stop chan struct{}
	done chan struct{}
}

// append marshals one command onto the log. Called with the store lock
// held, so commands land in exactly the order they were applied.
func (a *aofWriter) append(args []string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n, err := writeCmdCounted(a.w, args)
	a.size += int64(n)
	a.appends++
	a.dirty = true
	if err == nil && a.opt.Fsync == FsyncAlways {
		err = a.syncLocked()
	}
	if err != nil && a.err == nil {
		a.err = err
	}
	mAofAppends.Inc()
	mAofBytes.Add(int64(n))
	mAofSize.Set(float64(a.size))
}

// syncLocked flushes the buffer and fsyncs the file; caller holds a.mu.
func (a *aofWriter) syncLocked() error {
	if !a.dirty {
		return nil
	}
	if err := a.w.Flush(); err != nil {
		return err
	}
	if err := a.f.Sync(); err != nil {
		return err
	}
	a.dirty = false
	mAofFsyncs.Inc()
	return nil
}

// Sync forces a flush+fsync of any buffered appends.
func (a *aofWriter) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.syncLocked(); err != nil {
		if a.err == nil {
			a.err = err
		}
		return err
	}
	return a.err
}

// flushLoop is the FsyncInterval background ticker.
func (a *aofWriter) flushLoop() {
	defer close(a.done)
	t := time.NewTicker(a.opt.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			a.Sync() //nolint:errcheck // sticky in a.err
		case <-a.stop:
			return
		}
	}
}

// close stops the flusher and closes the file after a final sync.
func (a *aofWriter) close() error {
	if a.stop != nil {
		close(a.stop)
		<-a.done
		a.stop = nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	serr := a.syncLocked()
	cerr := a.f.Close()
	if a.err != nil {
		return a.err
	}
	if serr != nil {
		return serr
	}
	return cerr
}

// writeCmdCounted marshals one command as a RESP array of bulk strings and
// returns the byte length written.
func writeCmdCounted(w *bufio.Writer, args []string) (int, error) {
	n := respArrayLen(args)
	if err := writeCmd(w, args); err != nil {
		return n, err
	}
	return n, nil
}

// writeCmd marshals one command as a RESP array of bulk strings — the exact
// frame the wire protocol uses, so one decoder (readCommand) serves the
// server, AOF replay and replication alike.
func writeCmd(w *bufio.Writer, args []string) error {
	if err := writeArray(w, len(args)); err != nil {
		return err
	}
	for _, s := range args {
		if err := writeBulk(w, s); err != nil {
			return err
		}
	}
	return nil
}

// respArrayLen returns the encoded size of a command frame.
func respArrayLen(args []string) int {
	n := 1 + intDigits(len(args)) + 2
	for _, s := range args {
		n += 1 + intDigits(len(s)) + 2 + len(s) + 2
	}
	return n
}

func intDigits(v int) int {
	if v == 0 {
		return 1
	}
	d := 0
	for v > 0 {
		d++
		v /= 10
	}
	return d
}

// Open loads (or creates) a durable store rooted at dir: it picks the
// newest complete generation, loads its snapshot, replays the AOF tail —
// truncating a torn final record from a mid-write crash — and attaches an
// appender so every subsequent write is logged.
func Open(dir string, opt PersistOptions) (*Store, error) {
	if err := opt.fill(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	snapGens := map[int]bool{}
	aofGens := map[int]bool{}
	for _, e := range entries {
		if g, ok := parseGen(e.Name(), "snap-"); ok {
			snapGens[g] = true
		}
		if g, ok := parseGen(e.Name(), "aof-"); ok {
			aofGens[g] = true
		}
	}

	// Recovery generation: the newest one whose snapshot committed (rename
	// completed). With no snapshot at all, the oldest AOF holds the full
	// history. Anything else on disk is a stale or half-written generation.
	gen := 0
	for g := range snapGens {
		if g > gen {
			gen = g
		}
	}
	if gen == 0 {
		for g := range aofGens {
			if gen == 0 || g < gen {
				gen = g
			}
		}
	}
	if gen == 0 {
		gen = 1
	}

	s := New()
	if snapGens[gen] {
		// A committed snapshot is fsynced before rename: a decode error
		// here is real corruption, not a torn write — fail loudly.
		if _, err := replayFile(s, snapPath(dir, gen), false); err != nil {
			return nil, fmt.Errorf("kvstore: snapshot %s: %w", snapPath(dir, gen), err)
		}
	}
	if aofGens[gen] {
		n, err := replayFile(s, aofPath(dir, gen), true)
		if err != nil {
			return nil, fmt.Errorf("kvstore: aof %s: %w", aofPath(dir, gen), err)
		}
		_ = n
	}
	// Drop every other generation's files.
	for g := range snapGens {
		if g != gen {
			os.Remove(snapPath(dir, g)) //nolint:errcheck
		}
	}
	for g := range aofGens {
		if g != gen {
			os.Remove(aofPath(dir, g)) //nolint:errcheck
		}
	}

	f, err := os.OpenFile(aofPath(dir, gen), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	a := &aofWriter{
		dir:          dir,
		opt:          opt,
		compactEvery: opt.CompactEvery,
		gen:          gen,
		f:            f,
		w:            bufio.NewWriter(f),
		size:         st.Size(),
	}
	if opt.Fsync == FsyncInterval {
		a.stop = make(chan struct{})
		a.done = make(chan struct{})
		go a.flushLoop()
	}
	mAofSize.Set(float64(a.size))
	s.mu.Lock()
	s.aof = a
	s.logging = true
	s.mu.Unlock()
	return s, nil
}

// Dir returns the persistence directory, or "" for a purely in-memory
// store.
func (s *Store) Dir() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.aof == nil {
		return ""
	}
	return s.aof.dir
}

// Sync forces buffered AOF appends to disk (no-op without persistence).
func (s *Store) Sync() error {
	s.mu.RLock()
	a := s.aof
	s.mu.RUnlock()
	if a == nil {
		return nil
	}
	return a.Sync()
}

// Close flushes and closes the AOF and detaches it; in-memory operation
// continues to work. Safe on a purely in-memory store.
func (s *Store) Close() error {
	s.mu.Lock()
	a := s.aof
	s.aof = nil
	if len(s.feeds) == 0 {
		s.logging = false
	}
	s.mu.Unlock()
	if a == nil {
		return nil
	}
	return a.close()
}

// countingReader tracks how many bytes the decoder has consumed from the
// underlying file, so a torn tail can be truncated at the last whole
// command.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// replayFile applies every command in a RESP command-stream file to the
// store. With lenient=true (AOF tail), a decode error mid-file — the
// signature of a crash between bytes of an append — truncates the file to
// the last complete command instead of failing recovery.
func replayFile(s *Store, path string, lenient bool) (int, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	cr := &countingReader{r: f}
	br := bufio.NewReader(cr)
	applied := 0
	good := int64(0)
	for {
		args, err := readCommand(br)
		if err != nil {
			if err == io.EOF {
				return applied, nil
			}
			if !lenient {
				return applied, err
			}
			st, serr := f.Stat()
			if serr != nil {
				return applied, serr
			}
			dropped := st.Size() - good
			if terr := f.Truncate(good); terr != nil {
				return applied, terr
			}
			mAofTruncated.Add(dropped)
			kvlog.Warn("aof tail truncated",
				"path", path, "dropped_bytes", dropped, "replayed", applied)
			return applied, nil
		}
		if err := applyLogged(s, args); err != nil {
			if !lenient {
				return applied, err
			}
			kvlog.Warn("aof replay skipped bad command",
				"path", path, "cmd", strings.Join(args, " "), "err", err)
			continue
		}
		applied++
		good = cr.n - int64(br.Buffered())
		mAofReplayed.Inc()
	}
}

var errBadLogCmd = errors.New("kvstore: malformed logged command")

// applyLogged applies one logged command to the store through its public
// API — the one decoder shared by AOF replay, snapshot load and the replica
// apply loop. On a store with persistence attached the command is re-logged,
// which is exactly what a durable replica wants.
func applyLogged(s *Store, args []string) error {
	if len(args) == 0 {
		return errBadLogCmd
	}
	switch strings.ToUpper(args[0]) {
	case "SET":
		if len(args) != 3 {
			return errBadLogCmd
		}
		s.Set(args[1], args[2])
	case "SETAT":
		if len(args) != 4 {
			return errBadLogCmd
		}
		ns, err := strconv.ParseInt(args[3], 10, 64)
		if err != nil {
			return errBadLogCmd
		}
		s.SetAt(args[1], args[2], time.Unix(0, ns))
	case "DEL":
		if len(args) != 2 {
			return errBadLogCmd
		}
		s.Del(args[1])
	case "INCR":
		if len(args) != 2 {
			return errBadLogCmd
		}
		if _, err := s.Incr(args[1]); err != nil {
			return err
		}
	case "HSET":
		if len(args) != 4 {
			return errBadLogCmd
		}
		s.HSet(args[1], args[2], args[3])
	case "HDEL":
		if len(args) != 3 {
			return errBadLogCmd
		}
		s.HDel(args[1], args[2])
	case "LPUSH":
		if len(args) < 3 {
			return errBadLogCmd
		}
		s.LPush(args[1], args[2:]...)
	case "RPUSH":
		if len(args) < 3 {
			return errBadLogCmd
		}
		s.RPush(args[1], args[2:]...)
	case "LPOP":
		if len(args) != 2 {
			return errBadLogCmd
		}
		s.LPop(args[1])
	case "RPOP":
		if len(args) != 2 {
			return errBadLogCmd
		}
		s.RPop(args[1])
	case "EXPIREAT":
		if len(args) != 3 {
			return errBadLogCmd
		}
		ns, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return errBadLogCmd
		}
		s.ExpireAt(args[1], time.Unix(0, ns))
	default:
		return fmt.Errorf("kvstore: unknown logged command %q", args[0])
	}
	return nil
}

// sortedStrKeys returns a map's keys sorted (snapshot determinism).
func sortedStrKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
