package kvstore

import (
	"bufio"
	"sort"
	"strconv"

	"tero/internal/objstore"
)

// Object-store commands over the same RESP connection as the key-value
// commands (the kvstore is the coordination substrate; attaching the object
// store to it gives workers one address for both). RESP bulk strings are
// length-prefixed and binary-safe, so thumbnail payloads ride unmodified.
//
//	OPUT  bucket key data [field value]...  -> bulk etag
//	OGET  bucket key                        -> array [etag, modtime-unixnano, data, field, value, ...]
//	OHEAD bucket key                        -> array [etag, modtime-unixnano, field, value, ...]
//	ODEL  bucket key                        -> int 1/0
//	OLIST bucket prefix                     -> array of keys (sorted)
//	OSIZE bucket                            -> int
//
// Object data is intentionally outside the AOF/replication stream: objects
// are transit freight (thumbnails are deleted as soon as they are
// extracted, §7), not durable coordination state.

// AttachObjects exposes an object store through this server's wire protocol.
// Must be called before clients issue O* commands; safe to call once around
// server construction.
func (s *Server) AttachObjects(o *objstore.Store) {
	s.mu.Lock()
	s.objects = o
	s.mu.Unlock()
}

func (s *Server) objectStore() *objstore.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.objects
}

// dispatchObject handles the O* command family; cmd is already upper-cased.
// Returns handled=false for unknown O-prefixed commands so dispatch can fall
// through to its normal unknown-command error.
func (s *Server) dispatchObject(w *bufio.Writer, cmd string, args []string) (bool, error) {
	switch cmd {
	case "OPUT", "OGET", "OHEAD", "ODEL", "OLIST", "OSIZE":
	default:
		return false, nil
	}
	obj := s.objectStore()
	if obj == nil {
		return true, writeError(w, "no object store attached")
	}
	switch cmd {
	case "OPUT":
		if len(args) < 4 || len(args)%2 != 0 {
			return true, writeError(w, "OPUT needs bucket key data [field value]...")
		}
		var meta map[string]string
		if len(args) > 4 {
			meta = make(map[string]string, (len(args)-4)/2)
			for i := 4; i+1 < len(args); i += 2 {
				meta[args[i]] = args[i+1]
			}
		}
		etag := obj.Put(args[1], args[2], []byte(args[3]), meta)
		return true, writeBulk(w, etag)
	case "OGET", "OHEAD":
		if len(args) != 3 {
			return true, writeError(w, cmd+" needs bucket key")
		}
		var o *objstore.Object
		var err error
		if cmd == "OGET" {
			o, err = obj.Get(args[1], args[2])
		} else {
			o, err = obj.Head(args[1], args[2])
		}
		if err != nil {
			return true, writeNull(w)
		}
		// Sorted metadata fields: deterministic wire bytes, same discipline
		// as HGETALL.
		fields := make([]string, 0, len(o.Meta))
		for f := range o.Meta {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		head := 2
		if cmd == "OGET" {
			head = 3
		}
		if err := writeArray(w, head+2*len(fields)); err != nil {
			return true, err
		}
		if err := writeBulk(w, o.ETag); err != nil {
			return true, err
		}
		if err := writeBulk(w, strconv.FormatInt(o.ModTime.UnixNano(), 10)); err != nil {
			return true, err
		}
		if cmd == "OGET" {
			if err := writeBulk(w, string(o.Data)); err != nil {
				return true, err
			}
		}
		for _, f := range fields {
			if err := writeBulk(w, f); err != nil {
				return true, err
			}
			if err := writeBulk(w, o.Meta[f]); err != nil {
				return true, err
			}
		}
		return true, nil
	case "ODEL":
		if len(args) != 3 {
			return true, writeError(w, "ODEL needs bucket key")
		}
		if obj.Delete(args[1], args[2]) == nil {
			return true, writeInt(w, 1)
		}
		return true, writeInt(w, 0)
	case "OLIST":
		if len(args) != 3 {
			return true, writeError(w, "OLIST needs bucket prefix")
		}
		keys := obj.List(args[1], args[2])
		if err := writeArray(w, len(keys)); err != nil {
			return true, err
		}
		for _, k := range keys {
			if err := writeBulk(w, k); err != nil {
				return true, err
			}
		}
		return true, nil
	default: // OSIZE
		if len(args) != 2 {
			return true, writeError(w, "OSIZE needs bucket")
		}
		return true, writeInt(w, int64(obj.Size(args[1])))
	}
}
