// Package serve is Tero's latency-information query service (§1, §6): it
// ingests the analysis output of the pipeline — per-{location, game}
// latency distributions derived by core.Analyze/core.Distribution — into a
// sharded, read-optimized in-memory index and exposes it over a stdlib
// net/http JSON API. This is the subsystem third parties (game companies,
// ISPs, researchers) query; everything before it is the producer.
//
// The moving parts:
//
//   - Builder accumulates *core.Analysis values (the pipeline feeds it via
//     Pipeline.Publish) and Build()s an immutable Snapshot: one Entry per
//     {location, game} with every statistic the API serves precomputed.
//   - Index holds the serving state in independently locked shards; Swap
//     atomically replaces the whole content with a new Snapshot without
//     ever locking readers out of more than one shard at a time.
//   - Server is the HTTP layer: /v1/locations, /v1/games, /v1/latency,
//     /v1/compare, /healthz, /readyz, /metrics, with deterministic ETags,
//     If-None-Match 304s, and an LRU response cache for hot keys.
//   - LoadGen hammers a running server with N concurrent clients and
//     reports throughput and tail latency.
//
// Determinism: an Entry is a pure function of its group's analyses, groups
// are processed in sorted key order, and all floats flowing into JSON pass
// through the stats sanitizers — so response bodies are byte-identical
// across serial and concurrent builds, and across pipeline republishes of
// identical data.
package serve

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"tero/internal/core"
	"tero/internal/geo"
	"tero/internal/sketch"
	"tero/internal/stats"
)

// quantileProbs are the percentiles every latency response reports: the
// paper's five boxplot percentiles (§5.2) plus the 1/10/90/99 tails the
// serving consumers (matchmaking, ISP planning) ask for.
var quantileProbs = []float64{1, 5, 10, 25, 50, 75, 90, 95, 99}

// Histogram layout defaults: fixed buckets shared by every entry so
// distributions are comparable bin-for-bin across locations.
const (
	DefaultHistLoMs = 0
	DefaultHistHiMs = 400
	DefaultHistBins = 40
)

// EntryKey is the canonical index key for a {location, game} pair:
// the location's lowercased "city|region|country" key joined to the
// lowercased game name with "::".
func EntryKey(loc geo.Location, game string) string {
	return loc.Key() + "::" + strings.ToLower(game)
}

// SplitPairKey splits a "location::game" composite key as used by the
// /v1/compare a= and b= parameters. The location part is a geo.Location
// key (which itself contains '|'), the game part follows the last "::".
func SplitPairKey(s string) (locKey, game string, ok bool) {
	i := strings.LastIndex(s, "::")
	if i < 0 {
		return "", "", false
	}
	return s[:i], s[i+2:], true
}

// Entry is one read-optimized {location, game} record: the sorted latency
// sample plus every derived statistic the API serves, all precomputed at
// build time — including the marshaled JSON body, the encoded binary body
// and both representations' ETags — so the steady-state query path is a
// shard lookup plus one Write, with zero per-request marshaling.
// Entries are immutable after construction and safe to share across
// goroutines and snapshots.
type Entry struct {
	Key      string
	Location geo.Location
	Game     string
	// Sorted is the ascending kept-latency sample of the distribution
	// (core.Distribution output). Never empty for batch entries; nil for
	// streaming entries, which carry a sketch instead.
	Sorted []float64
	// Streamers counts the contributing streamers: for batch entries the
	// non-discarded high-quality analyses, for streaming entries the
	// distinct streamer pseudonyms seen for the group.
	Streamers int

	// Streaming-entry state: the merged window sketch the response was
	// derived from (serves /v1/compare) and the retained reading count.
	sk *sketch.Sketch
	n  int

	resp    LatencyResponse
	body    []byte // resp marshaled as JSON at build time
	binBody []byte // resp encoded in the binary wire format at build time
	etag    string // JSON representation ETag
	binETag string // binary representation ETag (same hash, distinct tag)
}

// N returns the sample size.
func (e *Entry) N() int {
	if e.Sorted == nil {
		return e.n
	}
	return len(e.Sorted)
}

// medianMs returns the served median for either entry flavor.
func (e *Entry) medianMs() float64 {
	if e.Sorted == nil && e.sk != nil {
		return stats.Sanitize(e.sk.Quantile(50))
	}
	med, _ := stats.PercentileOK(e.Sorted, 50)
	return stats.Sanitize(med)
}

// compareDistance computes the 1-Wasserstein distance between two entries:
// exact over raw samples for batch entries, sketch-level for streaming
// ones. A mix of flavors cannot share an index, so it reports undefined.
func compareDistance(a, b *Entry) (float64, bool) {
	if a.sk != nil && b.sk != nil {
		return sketch.Wasserstein1(a.sk, b.sk), true
	}
	if a.Sorted != nil && b.Sorted != nil {
		return stats.Wasserstein1OK(a.Sorted, b.Sorted)
	}
	return 0, false
}

// ETag returns the entry's deterministic ETag: a hash of the full sample
// and identity, so identical data always revalidates and any republish
// with changed data misses.
func (e *Entry) ETag() string { return e.etag }

// ETagBinary returns the ETag of the binary representation: same data
// hash, distinct tag, so a client switching Accept never gets a 304 for a
// representation it does not hold.
func (e *Entry) ETagBinary() string { return e.binETag }

// Response returns the precomputed latency response (by value: callers
// cannot mutate the shared entry).
func (e *Entry) Response() LatencyResponse { return e.resp }

// BodyJSON returns the pre-marshaled JSON body (callers must not mutate).
func (e *Entry) BodyJSON() []byte { return e.body }

// BodyBinary returns the pre-encoded binary body (callers must not mutate).
func (e *Entry) BodyBinary() []byte { return e.binBody }

// LocationJSON is the JSON shape of a location tuple.
type LocationJSON struct {
	Key     string `json:"key"`
	City    string `json:"city,omitempty"`
	Region  string `json:"region,omitempty"`
	Country string `json:"country,omitempty"`
	Display string `json:"display"`
}

func locationJSON(l geo.Location) LocationJSON {
	return LocationJSON{
		Key:     l.Key(),
		City:    l.City,
		Region:  l.Region,
		Country: l.Country,
		Display: l.String(),
	}
}

// QuantileJSON is one (percentile, latency) point.
type QuantileJSON struct {
	P  float64 `json:"p"`
	Ms float64 `json:"ms"`
}

// HistogramJSON is the fixed-bucket histogram of a distribution. Counts
// has one element per bin of width BinWidthMs starting at LoMs; Under and
// Over count samples outside [LoMs, HiMs).
type HistogramJSON struct {
	LoMs       float64 `json:"lo_ms"`
	HiMs       float64 `json:"hi_ms"`
	BinWidthMs float64 `json:"bin_width_ms"`
	Counts     []int   `json:"counts"`
	Under      int     `json:"under"`
	Over       int     `json:"over"`
}

// CDFJSON is the empirical CDF evaluated at the histogram bin edges.
type CDFJSON struct {
	AtMs []float64 `json:"at_ms"`
	P    []float64 `json:"p"`
}

// LatencyResponse is the /v1/latency response body.
type LatencyResponse struct {
	Location  LocationJSON   `json:"location"`
	Game      string         `json:"game"`
	N         int            `json:"n"`
	Streamers int            `json:"streamers"`
	MeanMs    float64        `json:"mean_ms"`
	StdMs     float64        `json:"std_ms"`
	MinMs     float64        `json:"min_ms"`
	MaxMs     float64        `json:"max_ms"`
	Quantiles []QuantileJSON `json:"quantiles"`
	Histogram HistogramJSON  `json:"histogram"`
	CDF       CDFJSON        `json:"cdf"`
}

// CompareSideJSON summarizes one side of a /v1/compare response.
type CompareSideJSON struct {
	Location LocationJSON `json:"location"`
	Game     string       `json:"game"`
	N        int          `json:"n"`
	MedianMs float64      `json:"median_ms"`
}

// CompareResponse is the /v1/compare response body: the 1-Wasserstein
// (earth mover's) distance between the two latency distributions, in ms.
type CompareResponse struct {
	A             CompareSideJSON `json:"a"`
	B             CompareSideJSON `json:"b"`
	WassersteinMs float64         `json:"wasserstein_ms"`
}

// histConfig is the builder's histogram layout.
type histConfig struct {
	lo, hi float64
	bins   int
}

func (h histConfig) orDefault() histConfig {
	if h.bins <= 0 {
		h.bins = DefaultHistBins
	}
	if h.hi <= h.lo {
		h.lo, h.hi = DefaultHistLoMs, DefaultHistHiMs
	}
	return h
}

// newEntry computes the full read-optimized record for one {location, game}
// group. It returns nil when the group's distribution has fewer than
// minPoints samples. Pure: depends only on its arguments.
func newEntry(loc geo.Location, game string, analyses []*core.Analysis,
	p core.Params, minPoints int, hc histConfig) *Entry {
	dist := core.Distribution(analyses, p)
	if len(dist) < minPoints || len(dist) == 0 {
		return nil
	}
	sorted := append([]float64(nil), dist...)
	sort.Float64s(sorted)

	streamers := 0
	for _, a := range analyses {
		if a != nil && !a.Discarded && a.HighQuality {
			streamers++
		}
	}

	e := &Entry{
		Key:       EntryKey(loc, game),
		Location:  loc,
		Game:      game,
		Sorted:    sorted,
		Streamers: streamers,
	}
	e.resp = e.computeResponse(hc)
	e.etag, e.binETag = e.computeETags()
	// Publish-time marshaling: both representations are rendered here, on
	// the builder's worker pool, so the request hot path never marshals.
	// The JSON bytes are exactly mustMarshal(e.resp) — what the handler
	// used to produce per request — so bodies stay byte-identical.
	e.body = mustMarshal(e.resp)
	e.binBody = EncodeLatencyBinary(&e.resp)
	return e
}

// computeResponse derives every served statistic from the sorted sample.
// All floats pass through stats.Sanitize so the result is always
// JSON-encodable (encoding/json errors on NaN/Inf).
func (e *Entry) computeResponse(hc histConfig) LatencyResponse {
	hc = hc.orDefault()
	mean, std := stats.MeanStd(e.Sorted)
	min, max, _ := stats.MinMaxOK(e.Sorted)

	qs := make([]QuantileJSON, 0, len(quantileProbs))
	for _, p := range quantileProbs {
		v, ok := stats.PercentileOK(e.Sorted, p)
		if !ok {
			v = 0
		}
		qs = append(qs, QuantileJSON{P: p, Ms: stats.Sanitize(v)})
	}

	h := stats.NewHistogram(hc.lo, hc.hi, hc.bins)
	h.AddAll(e.Sorted)
	width := (hc.hi - hc.lo) / float64(hc.bins)

	edges := make([]float64, hc.bins+1)
	for i := range edges {
		edges[i] = hc.lo + width*float64(i)
	}
	cdf := stats.CDFAt(e.Sorted, edges)
	for i := range cdf {
		cdf[i] = stats.Sanitize(cdf[i])
	}

	return LatencyResponse{
		Location:  locationJSON(e.Location),
		Game:      e.Game,
		N:         len(e.Sorted),
		Streamers: e.Streamers,
		MeanMs:    stats.Sanitize(mean),
		StdMs:     stats.Sanitize(std),
		MinMs:     stats.Sanitize(min),
		MaxMs:     stats.Sanitize(max),
		Quantiles: qs,
		Histogram: HistogramJSON{
			LoMs:       hc.lo,
			HiMs:       hc.hi,
			BinWidthMs: width,
			Counts:     h.Counts,
			Under:      h.Under,
			Over:       h.Over,
		},
		CDF: CDFJSON{AtMs: edges, P: cdf},
	}
}

// computeETags hashes the entry's identity and full sample with FNV-64a.
// It is a pure function of the data, so serial and concurrent builds (and
// republishes of unchanged data) produce the same tags. The JSON tag is
// the historical "t1-" form; the binary representation shares the hash
// under a distinct "t1b-" prefix, keeping the two cache-incompatible.
func (e *Entry) computeETags() (jsonTag, binTag string) {
	h := fnv.New64a()
	h.Write([]byte(e.Key))                                     //nolint:errcheck — fnv never fails
	binary.Write(h, binary.LittleEndian, int64(e.Streamers))   //nolint:errcheck
	binary.Write(h, binary.LittleEndian, int64(len(e.Sorted))) //nolint:errcheck
	var buf [8]byte
	for _, v := range e.Sorted {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:]) //nolint:errcheck
	}
	sum := h.Sum64()
	return fmt.Sprintf("\"t1-%016x\"", sum), fmt.Sprintf("\"t1b-%016x\"", sum)
}

// newStreamEntry computes the read-optimized record for one streaming
// group from its window ring: every served statistic is derived from the
// merged sketch (exact moments and bounds, Alpha-accurate quantiles and
// histogram). Returns nil when fewer than minPoints readings are retained.
// Pure function of the ring state and streamer count — which are pure
// functions of the reading multiset — so full and incremental builds over
// the same readings render byte-identical bodies and ETags.
func newStreamEntry(loc geo.Location, game string, win *sketch.Windowed,
	streamers, minPoints int, hc histConfig) *Entry {
	merged := win.Merged()
	n := int(merged.Count())
	if n < minPoints || n == 0 {
		return nil
	}
	e := &Entry{
		Key:       EntryKey(loc, game),
		Location:  loc,
		Game:      game,
		Streamers: streamers,
		sk:        merged,
		n:         n,
	}
	e.resp = e.computeStreamResponse(hc)
	// The ETag hashes the full ring fingerprint — the canonical state the
	// body is a function of — under the same wire prefixes as batch tags.
	sum := win.Fingerprint()
	h := fnv.New64a()
	h.Write([]byte(e.Key))                                   //nolint:errcheck — fnv never fails
	binary.Write(h, binary.LittleEndian, int64(e.Streamers)) //nolint:errcheck
	binary.Write(h, binary.LittleEndian, sum)                //nolint:errcheck
	tag := h.Sum64()
	e.etag = fmt.Sprintf("\"t1-%016x\"", tag)
	e.binETag = fmt.Sprintf("\"t1b-%016x\"", tag)
	e.body = mustMarshal(e.resp)
	e.binBody = EncodeLatencyBinary(&e.resp)
	return e
}

// computeStreamResponse derives the served statistics from the merged
// sketch, mirroring computeResponse's shape: same quantile set, same fixed
// histogram layout, same CDF edges, every float sanitized.
func (e *Entry) computeStreamResponse(hc histConfig) LatencyResponse {
	hc = hc.orDefault()
	qs := make([]QuantileJSON, 0, len(quantileProbs))
	for _, p := range quantileProbs {
		qs = append(qs, QuantileJSON{P: p, Ms: stats.Sanitize(e.sk.Quantile(p))})
	}

	width := (hc.hi - hc.lo) / float64(hc.bins)
	counts := make([]int, hc.bins)
	under, over := 0, 0
	e.sk.ForEach(func(v float64, c uint64) {
		switch {
		case v < hc.lo:
			under += int(c)
		case v >= hc.hi:
			over += int(c)
		default:
			i := int((v - hc.lo) / (hc.hi - hc.lo) * float64(hc.bins))
			if i >= hc.bins {
				i = hc.bins - 1
			}
			counts[i] += int(c)
		}
	})

	edges := make([]float64, hc.bins+1)
	for i := range edges {
		edges[i] = hc.lo + width*float64(i)
	}
	cdf := e.sk.CDF(edges)
	for i := range cdf {
		cdf[i] = stats.Sanitize(cdf[i])
	}

	return LatencyResponse{
		Location:  locationJSON(e.Location),
		Game:      e.Game,
		N:         e.n,
		Streamers: e.Streamers,
		MeanMs:    stats.Sanitize(e.sk.Mean()),
		StdMs:     stats.Sanitize(e.sk.Std()),
		MinMs:     stats.Sanitize(e.sk.Min()),
		MaxMs:     stats.Sanitize(e.sk.Max()),
		Quantiles: qs,
		Histogram: HistogramJSON{
			LoMs:       hc.lo,
			HiMs:       hc.hi,
			BinWidthMs: width,
			Counts:     counts,
			Under:      under,
			Over:       over,
		},
		CDF: CDFJSON{AtMs: edges, P: cdf},
	}
}

// combineETags derives the deterministic ETag of a response computed from
// two entries (/v1/compare).
func combineETags(a, b string) string {
	h := fnv.New64a()
	h.Write([]byte(a)) //nolint:errcheck
	h.Write([]byte{0}) //nolint:errcheck
	h.Write([]byte(b)) //nolint:errcheck
	return fmt.Sprintf("\"t1-%016x\"", h.Sum64())
}
