package core

import "sort"

// Cluster is a similar-latency cluster of segments (§3.3.3): a latency
// interval such that measurements in different clusters differ by at least
// the merge gap.
type Cluster struct {
	Min, Max float64
	// Points is the number of measurements inside the cluster.
	Points int
	// Weight is the fraction of the considered measurements that fall in
	// this cluster (the paper annotates clusters with weight w%).
	Weight float64
}

// Mid returns the center of the cluster interval.
func (c *Cluster) Mid() float64 { return (c.Min + c.Max) / 2 }

// Contains reports whether a latency value falls inside the cluster range.
func (c *Cluster) Contains(v float64) bool { return v >= c.Min && v <= c.Max }

// interval is a cluster-building input.
type interval struct {
	min, max float64
	points   int
}

// mergeIntervals single-links intervals whose gap is smaller than gap: two
// intervals stay separate only if all their values differ by at least gap.
func mergeIntervals(in []interval, gap float64) []Cluster {
	if len(in) == 0 {
		return nil
	}
	sorted := append([]interval(nil), in...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].min < sorted[j].min })
	var out []Cluster
	cur := Cluster{Min: sorted[0].min, Max: sorted[0].max, Points: sorted[0].points}
	total := sorted[0].points
	for _, iv := range sorted[1:] {
		total += iv.points
		if iv.min-cur.Max < gap {
			if iv.max > cur.Max {
				cur.Max = iv.max
			}
			cur.Points += iv.points
		} else {
			out = append(out, cur)
			cur = Cluster{Min: iv.min, Max: iv.max, Points: iv.points}
		}
	}
	out = append(out, cur)
	if total > 0 {
		for i := range out {
			out[i].Weight = float64(out[i].Points) / float64(total)
		}
	}
	// Heaviest first, ties by lower latency.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Points != out[j].Points {
			return out[i].Points > out[j].Points
		}
		return out[i].Min < out[j].Min
	})
	return out
}

// segmentKept reports whether a segment's measurements survive analysis and
// participate in clustering: stable segments, absorbed unstable ones, and
// corrected anomalies.
func segmentKept(s *Segment) bool {
	switch s.Flag {
	case FlagAbsorbed, FlagCorrected:
		return true
	case FlagNone:
		return s.Stable
	default:
		return false
	}
}

// clusterSegments builds the streamer's similar-latency clusters from the
// kept segments, merging at MergeFactor × LatGap.
func clusterSegments(segs []Segment, p Params) []Cluster {
	var ivs []interval
	for i := range segs {
		s := &segs[i]
		if !segmentKept(s) {
			continue
		}
		ivs = append(ivs, interval{min: s.Min, max: s.Max, points: s.Len()})
	}
	return mergeIntervals(ivs, p.MergeFactor*p.LatGap)
}

// clusterIndexOf returns the index of the cluster containing the segment's
// midpoint, or -1.
func clusterIndexOf(clusters []Cluster, s *Segment) int {
	mid := (s.Min + s.Max) / 2
	for i := range clusters {
		if clusters[i].Contains(mid) {
			return i
		}
	}
	// Fall back to nearest cluster edge (segments from other streamers may
	// fall slightly outside all merged ranges).
	best, bestD := -1, 0.0
	for i := range clusters {
		d := 0.0
		switch {
		case mid < clusters[i].Min:
			d = clusters[i].Min - mid
		case mid > clusters[i].Max:
			d = mid - clusters[i].Max
		}
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
