#!/bin/sh
# Benchmark harness: runs the packed-vs-scalar kernel microbenchmarks
# (internal/imaging, internal/ocr, internal/imageproc) and the end-to-end
# root benchmarks (VolumePipeline, Tab4OCR) with -benchmem, and writes the
# results as JSON records {name, ns_op, b_op, allocs_op} to BENCH_pr5.json.
#
# Environment overrides:
#   BENCH_OUT         output file        (default BENCH_pr5.json)
#   KERNEL_BENCHTIME  -benchtime for the kernel benchmarks (default 1s)
#   ROOT_BENCHTIME    -benchtime for the root benchmarks   (default 1x)
#
# The smoke invocation in scripts/check.sh runs everything at 1x into a
# throwaway file, just proving the benchmarks still execute.
set -eu

cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_pr5.json}"
KBENCH="${KERNEL_BENCHTIME:-1s}"
RBENCH="${ROOT_BENCHTIME:-1x}"
TXT="${TMPDIR:-/tmp}/tero-bench-$$.txt"
trap 'rm -f "$TXT"' EXIT
: > "$TXT"

echo "== kernel benchmarks (-benchtime $KBENCH) =="
go test -run '^$' -bench . -benchmem -benchtime "$KBENCH" \
    ./internal/imaging ./internal/ocr ./internal/imageproc | tee -a "$TXT"

echo "== root benchmarks (-benchtime $RBENCH) =="
go test -run '^$' -bench '^Benchmark(VolumePipeline|Tab4OCR)$' \
    -benchmem -benchtime "$RBENCH" . | tee -a "$TXT"

awk 'BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bop = "0"; aop = "0"
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "B/op") bop = $(i - 1)
        if ($i == "allocs/op") aop = $(i - 1)
    }
    if (ns == "") next
    if (!first) printf(",\n")
    first = 0
    printf("  {\"name\": \"%s\", \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", name, ns, bop, aop)
}
END { print "\n]" }' "$TXT" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"
