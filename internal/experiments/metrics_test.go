package experiments

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"tero/internal/obs"
)

// TestMetricsDoNotPerturbTables is the observability determinism
// regression: the experiment suite renders byte-identical tables whether
// the obs layer is silenced or fully enabled (trace logging to a live sink,
// debug server up and scraped mid-run). pelt is excluded — its table
// reports wall-clock time by design.
func TestMetricsDoNotPerturbTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite twice is not short")
	}
	ids := []string{"volume", "tab4", "fig4", "fig7", "fig13", "dense"}
	o := Options{Seed: 9, Scale: 0.15, Concurrency: 4}

	runAll := func() string {
		var sb strings.Builder
		for _, id := range ids {
			tabs, err := Run(id, o)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			sb.WriteString(render(tabs))
		}
		return sb.String()
	}

	// Pass 1: observability silenced.
	obs.Reset()
	prevLevel := obs.SetLogLevel(obs.LevelOff)
	silent := runAll()

	// Pass 2: everything on — trace logs into a buffer, metrics collected,
	// debug server scraped while experiments run.
	obs.Reset()
	var logBuf bytes.Buffer
	prevW := obs.SetLogOutput(&logBuf)
	obs.SetLogLevel(obs.LevelTrace)
	dbg, err := obs.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	loud := runAll()
	resp, err := http.Get(dbg.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := dbg.ShutdownTimeout(5 * time.Second); err != nil {
		t.Errorf("debug server shutdown: %v", err)
	}
	obs.SetLogLevel(prevLevel)
	obs.SetLogOutput(prevW)

	if silent != loud {
		line := firstDiff(silent, loud)
		t.Fatalf("tables diverge when observability is enabled: %s", line)
	}
	// Sanity: the loud pass really was loud.
	if logBuf.Len() == 0 {
		t.Error("trace pass emitted no log lines")
	}
	for _, want := range []string{
		"pipeline_thumbs_processed_total",
		"span_seconds{stage=pipeline.extract}",
		"twitchsim_http_requests_total",
		"download_api_requests_total",
		"docstore_ops_total{op=insert}",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics scrape missing %s", want)
		}
	}
}

func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return "silent:" + la[i] + " loud:" + lb[i]
		}
	}
	return "<length mismatch>"
}
