package kvstore

// KV is the store surface shared by the in-process Store and the RESP
// client: the operations Tero's micro-services coordinate through (App. A).
// The download module and pipeline depend on this interface, so the same
// code runs with an embedded store or against a shared TCP server.
type KV interface {
	Set(key, value string)
	Get(key string) (string, bool)
	Del(key string) bool
	// HSet reports whether the field was created (vs overwritten).
	HSet(key, field, value string) bool
	HGet(key, field string) (string, bool)
	// HDel reports whether the field existed.
	HDel(key, field string) bool
	HGetAll(key string) map[string]string
	RPush(key string, values ...string) int
	LPop(key string) (string, bool)
	LLen(key string) int
}

// Store implements KV directly.
var _ KV = (*Store)(nil)

// RemoteStore adapts a RESP Client to the KV interface, so processes can
// share one store over TCP exactly as the paper's containers share Redis.
// Transport errors surface through Err (the KV interface itself is
// error-free; a lost connection makes reads return zero values).
type RemoteStore struct {
	c *Client
	// Err records the first transport error encountered.
	Err error
}

// NewRemoteStore wraps a client.
func NewRemoteStore(c *Client) *RemoteStore { return &RemoteStore{c: c} }

// DialStore connects to a kvstore server and returns a KV over it.
func DialStore(addr string) (*RemoteStore, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	return NewRemoteStore(c), nil
}

// Close closes the underlying connection.
func (r *RemoteStore) Close() error { return r.c.Close() }

// Client exposes the underlying RESP client (e.g. to set its redial
// budget before a run that expects the store to crash and come back).
func (r *RemoteStore) Client() *Client { return r.c }

func (r *RemoteStore) do(args ...string) (Reply, bool) {
	rep, err := r.c.Do(args...)
	if err != nil {
		if r.Err == nil {
			r.Err = err
		}
		return Reply{}, false
	}
	return rep, true
}

// Set implements KV.
func (r *RemoteStore) Set(key, value string) { r.do("SET", key, value) }

// Get implements KV.
func (r *RemoteStore) Get(key string) (string, bool) {
	rep, ok := r.do("GET", key)
	if !ok || rep.Null {
		return "", false
	}
	return rep.Str, true
}

// Del implements KV.
func (r *RemoteStore) Del(key string) bool {
	rep, ok := r.do("DEL", key)
	return ok && rep.Int == 1
}

// HSet implements KV.
func (r *RemoteStore) HSet(key, field, value string) bool {
	rep, ok := r.do("HSET", key, field, value)
	return ok && rep.Int == 1
}

// HGet implements KV.
func (r *RemoteStore) HGet(key, field string) (string, bool) {
	rep, ok := r.do("HGET", key, field)
	if !ok || rep.Null {
		return "", false
	}
	return rep.Str, true
}

// HDel implements KV.
func (r *RemoteStore) HDel(key, field string) bool {
	rep, ok := r.do("HDEL", key, field)
	return ok && rep.Int == 1
}

// HGetAll implements KV.
func (r *RemoteStore) HGetAll(key string) map[string]string {
	rep, ok := r.do("HGETALL", key)
	out := make(map[string]string)
	if !ok {
		return out
	}
	for i := 0; i+1 < len(rep.Array); i += 2 {
		out[rep.Array[i].Str] = rep.Array[i+1].Str
	}
	return out
}

// RPush implements KV.
func (r *RemoteStore) RPush(key string, values ...string) int {
	args := append([]string{"RPUSH", key}, values...)
	rep, ok := r.do(args...)
	if !ok {
		return 0
	}
	return int(rep.Int)
}

// LPop implements KV.
func (r *RemoteStore) LPop(key string) (string, bool) {
	rep, ok := r.do("LPOP", key)
	if !ok || rep.Null {
		return "", false
	}
	return rep.Str, true
}

// LLen implements KV.
func (r *RemoteStore) LLen(key string) int {
	rep, ok := r.do("LLEN", key)
	if !ok {
		return 0
	}
	return int(rep.Int)
}

var _ KV = (*RemoteStore)(nil)
