package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the evaluation must have a runner.
	want := []string{
		"fig2", "fig4", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"tab3", "tab4", "tab5", "volume", "shared", "pelt", "dense",
		"ablation-ocr", "ablation-location", "ablation-correction",
	}
	have := map[string]bool{}
	for _, e := range List() {
		have[e[0]] = true
		if e[1] == "" {
			t.Errorf("experiment %s has no description", e[0])
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", DefaultOptions()); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:  "T",
		Header: []string{"a", "long-header"},
		Notes:  []string{"n1"},
	}
	tb.AddRow("x", "y")
	out := tb.String()
	for _, want := range []string{"== T ==", "long-header", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestOptionsScaling(t *testing.T) {
	o := Options{Scale: 0.5}
	if got := o.scaled(100); got != 50 {
		t.Fatalf("scaled = %d", got)
	}
	if got := o.scaled(1); got != 1 {
		t.Fatalf("scaled floor = %d", got)
	}
	o.Scale = 0
	if got := o.scaled(100); got != 100 {
		t.Fatalf("zero scale = %d", got)
	}
}

// Smoke tests at tiny scale for the cheaper experiments: rows exist and the
// run is deterministic given the seed.
func TestExperimentsSmoke(t *testing.T) {
	// pelt is excluded from the determinism check below: its table reports
	// wall-clock time.
	for _, id := range []string{"fig7", "fig13", "pelt", "dense"} {
		o := Options{Seed: 3, Scale: 0.2}
		t1, err := Run(id, o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		rows := 0
		for _, tb := range t1 {
			rows += len(tb.Rows)
		}
		if rows == 0 {
			t.Fatalf("%s: no rows", id)
		}
		if id == "pelt" {
			continue
		}
		t2, err := Run(id, o)
		if err != nil {
			t.Fatal(err)
		}
		if render(t1) != render(t2) {
			t.Fatalf("%s not deterministic", id)
		}
	}
}

func render(ts []*Table) string {
	var sb strings.Builder
	for _, t := range ts {
		sb.WriteString(t.String())
	}
	return sb.String()
}

func TestFig2ClusterShape(t *testing.T) {
	tabs, err := Run("fig2", Options{Seed: 2, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 || len(tabs[0].Rows) < 6 {
		t.Fatalf("fig2 shape: %d tables", len(tabs))
	}
	// Every listed location produces at least one cluster row with a
	// weight column.
	for _, row := range tabs[0].Rows {
		if len(row) != 3 {
			t.Fatalf("row = %v", row)
		}
	}
}

func TestTab3Ordering(t *testing.T) {
	// The key Table 3 property: the conservative filter slashes the raw
	// tools' error rates.
	tabs, err := Run("tab3", Options{Seed: 1, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]string{}
	for _, row := range tabs[0].Rows {
		rates[row[0]] = row[2]
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("bad rate %q", s)
		}
		return v
	}
	if parse(rates["CLIFF"]) < 3*parse(rates["CLIFF++"]) {
		t.Errorf("filter should slash CLIFF error: raw %s vs ++ %s",
			rates["CLIFF"], rates["CLIFF++"])
	}
	if parse(rates["Xponents"]) < 3*parse(rates["Xponents++"]) {
		t.Errorf("filter should slash Xponents error: raw %s vs ++ %s",
			rates["Xponents"], rates["Xponents++"])
	}
}
