package netsim

import (
	"math/rand"
	"time"
)

// TestbedConfig parameterizes one run of the Fig. 3 testbed experiment
// (Table 2 lists the paper's sweep values).
type TestbedConfig struct {
	// Game is a display name (the paper uses Genshin Impact and LoL).
	Game string
	// BaseOneWay is the propagation delay from Switch1 to the game server,
	// which sets the game's baseline latency (Genshin ≈ 15ms RTT, LoL ≈ 37ms).
	BaseOneWay time.Duration
	// BottleneckBW is the bottleneck bandwidth in bits/s (1e9 or 1e8).
	BottleneckBW float64
	// QueueCap is the bottleneck queue size in packets {50,500,1000,5000}.
	QueueCap int
	// UDPFlows CBR flows at UDPFrac of the bottleneck bandwidth each.
	UDPFlows int
	UDPFrac  float64
	// TCPFlows paced TCP flows at TCPFrac of bandwidth each, staggered.
	TCPFlows   int
	TCPFrac    float64
	TCPStagger time.Duration
	// Phase durations: start-up (no traffic), UDP-only, UDP+TCP, die-down.
	Startup, UDPPhase, MixedPhase, DieDown time.Duration
	// SampleEvery is the measurement cadence (paper: 5 Hz).
	SampleEvery time.Duration
	// AvgWindow is the game's latency-display averaging window (the paper
	// posits "a few seconds"; default 3s). When scaling the experiment
	// down in time, scale this too to preserve the lag-to-phase ratio.
	AvgWindow time.Duration
	// Seed varies flow phases across repetitions.
	Seed int64
}

// DefaultTestbedConfig returns the paper's experiment shape (Table 2),
// scaled in time by `scale` (1.0 = the paper's full 5 minutes).
func DefaultTestbedConfig(game string, baseOneWay time.Duration, bw float64, queue int, scale float64, seed int64) TestbedConfig {
	d := func(dur time.Duration) time.Duration {
		return time.Duration(float64(dur) * scale)
	}
	return TestbedConfig{
		Game: game, BaseOneWay: baseOneWay,
		BottleneckBW: bw, QueueCap: queue,
		UDPFlows: 2, UDPFrac: 0.5,
		TCPFlows: 8, TCPFrac: 0.10, TCPStagger: d(5 * time.Second),
		Startup: d(2 * time.Minute), UDPPhase: d(1 * time.Minute),
		MixedPhase: d(1 * time.Minute), DieDown: d(1 * time.Minute),
		SampleEvery: 200 * time.Millisecond,
		AvgWindow:   maxDuration(d(3*time.Second), 500*time.Millisecond),
		Seed:        seed,
	}
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// TestbedSample is one 5-Hz measurement row.
type TestbedSample struct {
	At time.Duration
	// ControlMs and TestMs are the gaming latencies displayed at the two
	// play-stations.
	ControlMs, TestMs float64
	// BottleneckMs is the network RTT contribution of the bottleneck.
	BottleneckMs float64
}

// TestbedResult is the output of one experiment run.
type TestbedResult struct {
	Config  TestbedConfig
	Samples []TestbedSample
	// MaxBottleneckMs is the worst bottleneck network latency observed
	// (the x-axis annotation of Fig. 4).
	MaxBottleneckMs float64
	// Drops counts bottleneck queue drops.
	Drops int
}

// AdjustedDiffs returns |adjusted gaming latency − network latency| per
// sample, where adjusted = Test display − Control display (§4.1), for
// samples after warm-up.
func (r *TestbedResult) AdjustedDiffs() []float64 {
	var out []float64
	warm := r.Config.Startup / 2
	for _, s := range r.Samples {
		if s.At < warm {
			continue
		}
		adj := s.TestMs - s.ControlMs
		d := adj - s.BottleneckMs
		if d < 0 {
			d = -d
		}
		out = append(out, d)
	}
	return out
}

// RunTestbed builds the Fig. 3 topology and runs one experiment.
//
// Topology (unidirectional link pairs):
//
//	Control ── sw1 ───────────────────────┐
//	Test ── router ══ bottleneck ══ sw2 ── sw1 ── server
//	           ↑ background UDP/TCP traffic crosses the bottleneck
func RunTestbed(cfg TestbedConfig) *TestbedResult {
	sim := NewSim()
	rng := rand.New(rand.NewSource(cfg.Seed))
	server := NewGameServer(sim)

	const (
		lanBW    = 1e9
		lanDelay = 200 * time.Microsecond
		udpPkt   = 1200
		tcpSeg   = 1500
	)

	// --- Control path: Control -> sw1 -> server and back. ---
	ctrlUp1 := NewLink(sim, lanBW, lanDelay, 1000, nil)
	ctrlUp2 := NewLink(sim, lanBW, cfg.BaseOneWay, 1000, nil)
	ctrlUpPath := Chain(ctrlUp1, ctrlUp2)
	Terminate(ctrlUp2, server)

	ctrlDown1 := NewLink(sim, lanBW, cfg.BaseOneWay, 1000, nil)
	ctrlDown2 := NewLink(sim, lanBW, lanDelay, 1000, nil)
	ctrlDownPath := Chain(ctrlDown1, ctrlDown2)

	control := NewGameClient(sim, 1, ctrlUpPath)
	Terminate(ctrlDown2, control)
	server.Register(1, ctrlDownPath)

	// --- Test path: Test -> router -> [bottleneck] -> sw2 -> sw1 -> server. ---
	testUp1 := NewLink(sim, lanBW, lanDelay, 1000, nil)                       // Test -> router
	bottleneck := NewLink(sim, cfg.BottleneckBW, lanDelay, cfg.QueueCap, nil) // router -> sw2
	testUp3 := NewLink(sim, lanBW, lanDelay, 1000, nil)                       // sw2 -> sw1
	testUp4 := NewLink(sim, lanBW, cfg.BaseOneWay, 1000, nil)                 // sw1 -> server
	testUpPath := Chain(testUp1, bottleneck, testUp3, testUp4)
	Terminate(testUp4, server)

	testDown1 := NewLink(sim, lanBW, cfg.BaseOneWay, 1000, nil)                  // server -> sw1
	testDown2 := NewLink(sim, lanBW, lanDelay, 1000, nil)                        // sw1 -> sw2
	revBottleneck := NewLink(sim, cfg.BottleneckBW, lanDelay, cfg.QueueCap, nil) // sw2 -> router
	testDown4 := NewLink(sim, lanBW, lanDelay, 1000, nil)                        // router -> Test
	testDownPath := Chain(testDown1, testDown2, revBottleneck, testDown4)

	test := NewGameClient(sim, 2, testUpPath)
	Terminate(testDown4, test)
	server.Register(2, testDownPath)

	// Desynchronize the two clients slightly.
	test.TickEvery += time.Duration(rng.Intn(1000)) * time.Microsecond
	if cfg.AvgWindow > 0 {
		control.AvgWindow = cfg.AvgWindow
		test.AvgWindow = cfg.AvgWindow
	}

	// --- Background traffic across the bottleneck. ---
	// Generators connect directly to the router, sinks to sw2 (Fig. 3), so
	// their traffic enters the bottleneck queue directly.
	bottleneckEntry := ReceiverFunc(func(p Packet) { bottleneck.Send(p) })
	revEntry := ReceiverFunc(func(p Packet) { revBottleneck.Send(p) })

	udpStart := cfg.Startup
	udpStop := cfg.Startup + cfg.UDPPhase + cfg.MixedPhase
	sink := &UDPSink{}
	// Route background UDP through the bottleneck to the sink: the
	// bottleneck's Out was wired by Chain to feed testUp3; tee by flow id.
	for i := 0; i < cfg.UDPFlows; i++ {
		jitter := time.Duration(rng.Intn(2000)) * time.Microsecond
		NewUDPFlow(sim, 100+i, bottleneckEntry, cfg.UDPFrac*cfg.BottleneckBW,
			udpPkt, udpStart+jitter, udpStop)
	}

	// Tee at the bottleneck exit: game packets continue toward the server,
	// background flows terminate at their sinks on sw2.
	tcpReceivers := make(map[int]*TCPReceiver)
	exit := ReceiverFunc(func(p Packet) {
		switch {
		case p.Flow >= 200: // TCP background
			if r, ok := tcpReceivers[p.Flow]; ok {
				r.Receive(p)
			}
		case p.Flow >= 100: // UDP background
			sink.Receive(p)
		default:
			testUp3.Send(p)
		}
	})
	bottleneck.Out = exit

	mixedStart := cfg.Startup + cfg.UDPPhase
	tcpSenders := make(map[int]*TCPSender)
	for i := 0; i < cfg.TCPFlows; i++ {
		id := 200 + i
		start := mixedStart + time.Duration(i)*cfg.TCPStagger
		if start > udpStop {
			start = udpStop
		}
		snd := NewTCPSenderPaced(sim, id, bottleneckEntry, tcpSeg,
			start, udpStop, cfg.TCPFrac*cfg.BottleneckBW)
		tcpReceivers[id] = NewTCPReceiver(sim, id, revEntry)
		tcpSenders[id] = snd
	}

	// Reverse tee: ACKs to TCP senders, game updates to the Test client.
	revExit := ReceiverFunc(func(p Packet) {
		if p.Flow >= 200 {
			if s, ok := tcpSenders[p.Flow]; ok {
				s.Receive(p)
			}
			return
		}
		testDown4.Send(p)
	})
	revBottleneck.Out = revExit

	// --- Sampling. ---
	res := &TestbedResult{Config: cfg}
	total := cfg.Startup + cfg.UDPPhase + cfg.MixedPhase + cfg.DieDown
	probeSize := 64
	var sampleFn func()
	sampleFn = func() {
		bottleneckRTT := bottleneck.QueueDelay() + bottleneck.serialization(probeSize) +
			bottleneck.Delay + revBottleneck.OneWayDelay()
		s := TestbedSample{
			At:           sim.Now(),
			ControlMs:    control.DisplayedMs(),
			TestMs:       test.DisplayedMs(),
			BottleneckMs: float64(bottleneckRTT) / float64(time.Millisecond),
		}
		res.Samples = append(res.Samples, s)
		if s.BottleneckMs > res.MaxBottleneckMs {
			res.MaxBottleneckMs = s.BottleneckMs
		}
		if sim.Now() < total {
			sim.Schedule(cfg.SampleEvery, sampleFn)
		}
	}
	sim.Schedule(cfg.SampleEvery, sampleFn)

	sim.Run(total)
	res.Drops = bottleneck.Dropped
	return res
}
