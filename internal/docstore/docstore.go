// Package docstore implements the document store Tero keeps latency
// measurements and analysis results in (App. B uses MongoDB): collections
// of schemaless documents with auto-assigned IDs, filtered queries, and
// single-field hash indexes.
package docstore

import (
	"fmt"
	"sort"
	"sync"

	"tero/internal/obs"
)

// Op counters: one per store operation, mirroring what a MongoDB profiler
// would report for the paper's deployment.
var (
	mInsert   = obs.C(obs.Lbl("docstore_ops_total", "op", "insert"))
	mGet      = obs.C(obs.Lbl("docstore_ops_total", "op", "get"))
	mFind     = obs.C(obs.Lbl("docstore_ops_total", "op", "find"))
	mFindEq   = obs.C(obs.Lbl("docstore_ops_total", "op", "findeq"))
	mDistinct = obs.C(obs.Lbl("docstore_ops_total", "op", "distinct"))
	mUpdate   = obs.C(obs.Lbl("docstore_ops_total", "op", "update"))
	mDelete   = obs.C(obs.Lbl("docstore_ops_total", "op", "delete"))
)

// Doc is one document: a field→value map. The "_id" field is assigned on
// insert.
type Doc map[string]any

// ID returns the document's identifier.
func (d Doc) ID() string {
	id, _ := d["_id"].(string)
	return id
}

// clone deep-copies one level of the document (values are copied by
// assignment; callers should not mutate nested structures).
func (d Doc) clone() Doc {
	out := make(Doc, len(d))
	for k, v := range d {
		out[k] = v
	}
	return out
}

// Collection is a set of documents.
type Collection struct {
	mu      sync.RWMutex
	docs    map[string]Doc
	nextID  int
	indexes map[string]map[any][]string // field -> value -> ids
}

// Store is a named set of collections.
type Store struct {
	mu    sync.Mutex
	colls map[string]*Collection
}

// New returns an empty store.
func New() *Store {
	return &Store{colls: make(map[string]*Collection)}
}

// C returns (creating if needed) the named collection.
func (s *Store) C(name string) *Collection {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.colls[name]
	if !ok {
		c = &Collection{docs: make(map[string]Doc), indexes: make(map[string]map[any][]string)}
		s.colls[name] = c
	}
	return c
}

// Collections returns the names of all collections, sorted.
func (s *Store) Collections() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.colls))
	for n := range s.colls {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EnsureIndex creates a hash index on a field (idempotent).
func (c *Collection) EnsureIndex(field string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.indexes[field]; ok {
		return
	}
	idx := make(map[any][]string)
	for id, d := range c.docs {
		if v, ok := d[field]; ok {
			idx[v] = append(idx[v], id)
		}
	}
	c.indexes[field] = idx
}

// Insert stores a document and returns its assigned ID.
func (c *Collection) Insert(d Doc) string {
	mInsert.Inc()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	id := fmt.Sprintf("doc%08d", c.nextID)
	cp := d.clone()
	cp["_id"] = id
	c.docs[id] = cp
	for field, idx := range c.indexes {
		if v, ok := cp[field]; ok {
			idx[v] = append(idx[v], id)
		}
	}
	return id
}

// Get returns the document with the given ID.
func (c *Collection) Get(id string) (Doc, bool) {
	mGet.Inc()
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.docs[id]
	if !ok {
		return nil, false
	}
	return d.clone(), true
}

// Find returns copies of all documents matching the filter (nil filter
// matches all), in insertion-ID order.
func (c *Collection) Find(filter func(Doc) bool) []Doc {
	mFind.Inc()
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]string, 0, len(c.docs))
	for id := range c.docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []Doc
	for _, id := range ids {
		d := c.docs[id]
		if filter == nil || filter(d) {
			out = append(out, d.clone())
		}
	}
	return out
}

// FindAfter returns copies of the documents inserted after sequence seq
// (0 means from the beginning), in insertion-ID order, plus the current
// sequence to pass to the next call. It is the cursor primitive behind the
// streaming publish path: each delta publish consumes only the documents
// that arrived since the previous one instead of re-scanning the
// collection. Documents deleted since insertion are simply absent.
func (c *Collection) FindAfter(seq int) ([]Doc, int) {
	mFind.Inc()
	c.mu.RLock()
	defer c.mu.RUnlock()
	if seq >= c.nextID {
		return nil, c.nextID
	}
	boundary := fmt.Sprintf("doc%08d", seq)
	ids := make([]string, 0, c.nextID-seq)
	for id := range c.docs {
		if id > boundary {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	out := make([]Doc, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.docs[id].clone())
	}
	return out, c.nextID
}

// FindEq returns documents whose field equals value, using an index when
// one exists.
func (c *Collection) FindEq(field string, value any) []Doc {
	mFindEq.Inc()
	c.mu.RLock()
	if idx, ok := c.indexes[field]; ok {
		ids := append([]string(nil), idx[value]...)
		sort.Strings(ids)
		out := make([]Doc, 0, len(ids))
		for _, id := range ids {
			if d, ok := c.docs[id]; ok {
				out = append(out, d.clone())
			}
		}
		c.mu.RUnlock()
		return out
	}
	c.mu.RUnlock()
	return c.Find(func(d Doc) bool { return d[field] == value })
}

// Distinct returns the distinct string values of a field across all
// documents, sorted. With an index on the field it reads the index keys
// directly instead of scanning every document; non-string values are
// ignored either way.
func (c *Collection) Distinct(field string) []string {
	mDistinct.Inc()
	c.mu.RLock()
	seen := make(map[string]bool)
	if idx, ok := c.indexes[field]; ok {
		for v, ids := range idx {
			if s, isStr := v.(string); isStr && len(ids) > 0 {
				seen[s] = true
			}
		}
	} else {
		for _, d := range c.docs {
			if s, isStr := d[field].(string); isStr {
				seen[s] = true
			}
		}
	}
	c.mu.RUnlock()
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Update merges fields into the document with the given ID.
func (c *Collection) Update(id string, fields Doc) bool {
	mUpdate.Inc()
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.docs[id]
	if !ok {
		return false
	}
	for field, idx := range c.indexes {
		if newV, changes := fields[field]; changes {
			if oldV, had := d[field]; had {
				idx[oldV] = removeID(idx[oldV], id)
			}
			idx[newV] = append(idx[newV], id)
		}
	}
	for k, v := range fields {
		if k == "_id" {
			continue
		}
		d[k] = v
	}
	return true
}

// Delete removes a document.
func (c *Collection) Delete(id string) bool {
	mDelete.Inc()
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.docs[id]
	if !ok {
		return false
	}
	for field, idx := range c.indexes {
		if v, had := d[field]; had {
			idx[v] = removeID(idx[v], id)
		}
	}
	delete(c.docs, id)
	return true
}

// Count returns the number of documents.
func (c *Collection) Count() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

func removeID(ids []string, id string) []string {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}
