package imageproc

import (
	"testing"

	"tero/internal/imaging"
	"tero/internal/worldsim"
)

// BenchmarkExtract measures the full four-step extraction on one rendered
// thumbnail (crop → preprocess → 3-engine OCR → vote), scalar reference
// kernels vs the packed default.
func BenchmarkExtract(b *testing.B) {
	world := worldsim.New(worldsim.DefaultConfig(1234))
	st := world.Streamers[0]
	gs := world.Sessions(st)[0]
	img, _ := worldsim.RenderDeterministic(gs, 0, worldsim.DefaultRenderOptions())
	defer imaging.Recycle(img)
	for _, v := range []struct {
		name string
		ex   *Extractor
	}{{"scalar", NewScalar()}, {"packed", New()}} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			got := v.ex.Extract(img, gs.Game)
			for i := 0; i < b.N; i++ {
				if r := v.ex.Extract(img, gs.Game); r != got {
					b.Fatalf("unstable extraction: %+v then %+v", got, r)
				}
			}
		})
	}
}
