package pipeline

import (
	"strings"
	"testing"

	"tero/internal/core"
	"tero/internal/obs"
)

// TestStageCountersMatchPipeline pins the observability wiring: after a
// full run, the obs registry's stage counters equal the pipeline's own
// struct counters, and every pipeline stage span was recorded.
func TestStageCountersMatchPipeline(t *testing.T) {
	obs.Reset()
	p := driveWorld(t, 31, 40, 1.5, 4)
	p.Analyze(core.DefaultParams())

	if p.Processed == 0 || p.Extracted == 0 {
		t.Fatalf("run produced no data: %+v", *p)
	}
	snap := obs.Default.Snapshot()
	for name, want := range map[string]int{
		"pipeline_thumbs_processed_total": p.Processed,
		"pipeline_measurements_total":     p.Extracted,
		"pipeline_lobby_zero_total":       p.Zero,
		"pipeline_extract_miss_total":     p.Missed,
		"pipeline_located_total":          p.Located,
		"pipeline_unlocated_total":        p.Unlocated,
	} {
		if got := snap.Counters[name]; got != int64(want) {
			t.Errorf("%s = %d, want %d (struct counter)", name, got, want)
		}
	}
	for _, stage := range []string{
		"pipeline.download", "pipeline.extract", "pipeline.locate",
		"pipeline.build_streams", "pipeline.analyze",
	} {
		h, ok := snap.Histograms[obs.Lbl("span_seconds", "stage", stage)]
		if !ok || h.Count == 0 {
			t.Errorf("no span recorded for stage %s", stage)
		}
	}
	// The consistency counters must also survive a /metrics text render.
	var sb strings.Builder
	if err := obs.Default.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "pipeline_thumbs_processed_total") {
		t.Error("WriteText dump missing pipeline counters")
	}
}

// TestForEachPanicRecovery pins the satellite fix: a panic inside a worker
// no longer kills the process from an anonymous goroutine — every item
// still runs, the panic is counted, and the caller sees a panic naming the
// stage and the offending item.
func TestForEachPanicRecovery(t *testing.T) {
	for _, workers := range []int{1, 8} {
		obs.Reset()
		prevW := obs.SetLogOutput(nil) // silence the expected error log
		p := &Pipeline{Concurrency: workers}
		ran := make([]bool, 64)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "stage boom") ||
					!strings.Contains(msg, "item 7") ||
					!strings.Contains(msg, "kaboom") {
					t.Fatalf("workers=%d: panic lacks stage/item context: %v", workers, r)
				}
			}()
			p.forEach("boom", len(ran), func(i int) {
				ran[i] = true
				if i == 7 {
					panic("kaboom")
				}
			})
		}()
		obs.SetLogOutput(prevW)
		for i, r := range ran {
			if !r {
				t.Fatalf("workers=%d: item %d skipped after panic", workers, i)
			}
		}
		c := obs.C(obs.Lbl("pipeline_worker_panics_total", "stage", "boom"))
		if c.Value() != 1 {
			t.Fatalf("workers=%d: panic counter = %d, want 1", workers, c.Value())
		}
	}
}

// TestForEachPanicLowestIndexWins pins determinism of the re-panic when
// several items blow up: the lowest index is reported at any concurrency.
func TestForEachPanicLowestIndexWins(t *testing.T) {
	prevW := obs.SetLogOutput(nil)
	defer obs.SetLogOutput(prevW)
	p := &Pipeline{Concurrency: 8}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if msg, _ := r.(string); !strings.Contains(msg, "item 3") {
			t.Fatalf("expected lowest item 3 reported, got: %v", r)
		}
	}()
	p.forEach("multi", 32, func(i int) {
		if i >= 3 {
			panic(i)
		}
	})
}
