package serve

import (
	"container/list"
	"sync"
)

// DefaultCacheSize is the response cache capacity (bodies, not bytes).
const DefaultCacheSize = 512

// cached is one LRU value: a marshaled response body and its ETag.
type cached struct {
	key  string
	body []byte
	etag string
}

// lruCache is a small mutex-guarded LRU of marshaled response bodies for
// hot keys. Cache keys embed the index version, so a snapshot Swap
// implicitly invalidates every stale body — stale entries age out of the
// LRU instead of being served.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

func newLRU(capacity int) *lruCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached body and ETag for key, promoting it to
// most-recently-used.
func (c *lruCache) get(key string) ([]byte, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, "", false
	}
	c.ll.MoveToFront(el)
	v := el.Value.(*cached)
	return v.body, v.etag, true
}

// add stores a body under key, evicting the least-recently-used entry when
// over capacity.
func (c *lruCache) add(key string, body []byte, etag string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*cached)
		v.body, v.etag = body, etag
		return
	}
	c.items[key] = c.ll.PushFront(&cached{key: key, body: body, etag: etag})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		if last == nil {
			break
		}
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cached).key)
		mCacheEvictions.Inc()
	}
}

// purge drops everything.
func (c *lruCache) purge() {
	c.mu.Lock()
	c.ll.Init()
	c.items = make(map[string]*list.Element, c.cap)
	c.mu.Unlock()
}

// len returns the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
