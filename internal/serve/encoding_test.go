package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

// fixtureEntries returns every entry of the standard test snapshot.
func fixtureEntries(t *testing.T) []*Entry {
	t.Helper()
	snap := testBuilder().Build()
	if len(snap.Entries) == 0 {
		t.Fatal("fixture produced no entries")
	}
	return snap.Entries
}

// TestBinaryRoundTrip pins the core contract: for every fixture entry,
// decoding the build-time binary body yields exactly the struct that the
// JSON body unmarshals to — every float64 bit pattern preserved.
func TestBinaryRoundTrip(t *testing.T) {
	for _, e := range fixtureEntries(t) {
		var fromJSON LatencyResponse
		if err := json.Unmarshal(e.BodyJSON(), &fromJSON); err != nil {
			t.Fatalf("%s: unmarshal JSON body: %v", e.Key, err)
		}
		fromBin, err := DecodeLatencyBinary(e.BodyBinary())
		if err != nil {
			t.Fatalf("%s: decode binary body: %v", e.Key, err)
		}
		if !reflect.DeepEqual(fromJSON, fromBin) {
			t.Errorf("%s: binary decode differs from JSON decode\njson: %+v\nbin:  %+v",
				e.Key, fromJSON, fromBin)
		}
		// And against the in-memory response, float-for-float.
		if !reflect.DeepEqual(e.Response(), fromBin) {
			t.Errorf("%s: binary decode differs from in-memory response", e.Key)
		}
	}
}

// TestBinaryPreservesFloatBits feeds the encoder values that JSON cannot
// even carry losslessly-looking (subnormals, ulp-separated values) and
// checks exact bit preservation.
func TestBinaryPreservesFloatBits(t *testing.T) {
	r := LatencyResponse{
		Game:   "g",
		MeanMs: math.SmallestNonzeroFloat64,
		StdMs:  math.Nextafter(1, 2), // 1 + one ulp
		MinMs:  -0.0,
		MaxMs:  math.MaxFloat64,
		CDF: CDFJSON{
			AtMs: []float64{0.1, 0.2, 0.30000000000000004},
			P:    []float64{0, 0.5, 1},
		},
	}
	got, err := DecodeLatencyBinary(EncodeLatencyBinary(&r))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for _, pair := range [][2]float64{
		{r.MeanMs, got.MeanMs}, {r.StdMs, got.StdMs},
		{r.MinMs, got.MinMs}, {r.MaxMs, got.MaxMs},
	} {
		if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
			t.Errorf("bit pattern changed: %x -> %x",
				math.Float64bits(pair[0]), math.Float64bits(pair[1]))
		}
	}
	for i := range r.CDF.AtMs {
		if math.Float64bits(r.CDF.AtMs[i]) != math.Float64bits(got.CDF.AtMs[i]) {
			t.Errorf("cdf at_ms[%d] bit pattern changed", i)
		}
	}
}

// TestBinaryDecodeErrors checks the decoder rejects malformed input rather
// than misreading it.
func TestBinaryDecodeErrors(t *testing.T) {
	e := fixtureEntries(t)[0]
	good := e.BodyBinary()

	if _, err := DecodeLatencyBinary(nil); err == nil {
		t.Error("nil input: want error")
	}
	if _, err := DecodeLatencyBinary([]byte("XXXX")); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: got %v", err)
	}
	// Truncation at every byte boundary must error, never panic or succeed.
	for n := 0; n < len(good); n++ {
		if _, err := DecodeLatencyBinary(good[:n]); err == nil {
			t.Fatalf("truncated to %d of %d bytes decoded without error", n, len(good))
		}
	}
	// Trailing garbage is detected.
	if _, err := DecodeLatencyBinary(append(append([]byte(nil), good...), 0xFF)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing byte: got %v", err)
	}
}

// TestBinaryNegotiation drives the handler: the Accept header selects the
// representation, each representation has its own ETag, and a 304 replay
// works per-representation.
func TestBinaryNegotiation(t *testing.T) {
	s := testServer(t)
	path := "/v1/latency?location=" + milanKey + "&game=Fortnite"

	wJSON := do(t, s, path)
	if wJSON.Code != http.StatusOK {
		t.Fatalf("JSON: status %d", wJSON.Code)
	}
	if ct := wJSON.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("JSON Content-Type = %q", ct)
	}
	jsonTag := wJSON.Header().Get("ETag")
	if !strings.HasPrefix(jsonTag, "\"t1-") {
		t.Errorf("JSON ETag = %q, want t1- form", jsonTag)
	}

	wBin := do(t, s, path, "Accept", ContentTypeBinary)
	if wBin.Code != http.StatusOK {
		t.Fatalf("binary: status %d", wBin.Code)
	}
	if ct := wBin.Header().Get("Content-Type"); ct != ContentTypeBinary {
		t.Errorf("binary Content-Type = %q, want %q", ct, ContentTypeBinary)
	}
	binTag := wBin.Header().Get("ETag")
	if !strings.HasPrefix(binTag, "\"t1b-") {
		t.Errorf("binary ETag = %q, want t1b- form", binTag)
	}
	if binTag == jsonTag {
		t.Error("binary and JSON ETags must differ (representations are cache-incompatible)")
	}

	// The two bodies decode to the same response.
	var fromJSON LatencyResponse
	if err := json.Unmarshal(wJSON.Body.Bytes(), &fromJSON); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	fromBin, err := DecodeLatencyBinary(wBin.Body.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(fromJSON, fromBin) {
		t.Error("served binary body decodes differently from served JSON body")
	}

	// Per-representation revalidation.
	w304 := do(t, s, path, "Accept", ContentTypeBinary, "If-None-Match", binTag)
	if w304.Code != http.StatusNotModified || w304.Body.Len() != 0 {
		t.Errorf("binary revalidate: status %d, body %d bytes", w304.Code, w304.Body.Len())
	}
	// A JSON tag must NOT revalidate the binary representation.
	wMiss := do(t, s, path, "Accept", ContentTypeBinary, "If-None-Match", jsonTag)
	if wMiss.Code != http.StatusOK {
		t.Errorf("JSON tag against binary representation: status %d, want 200", wMiss.Code)
	}
}

// TestBinaryWireSizeRealistic: for realistic latency data — floats that
// need their full 17 significant digits in text — the binary body is
// meaningfully smaller than JSON. (The integral test fixture is the
// opposite: "40" is cheaper in JSON than 8 binary bytes; real pipeline
// output is not integral.)
func TestBinaryWireSizeRealistic(t *testing.T) {
	r := LatencyResponse{
		Location: LocationJSON{Key: "milan|lombardy|italy", City: "Milan",
			Region: "Lombardy", Country: "Italy", Display: "Milan, Lombardy, Italy"},
		Game: "Fortnite", N: 1000, Streamers: 12,
	}
	f := func(i int) float64 { return 40 + math.Sqrt(float64(i))*1.7 }
	r.MeanMs, r.StdMs, r.MinMs, r.MaxMs = f(1), f(2), f(3), f(4)
	for i := 0; i < 9; i++ {
		r.Quantiles = append(r.Quantiles, QuantileJSON{P: float64(i) * 11.1, Ms: f(i)})
	}
	r.Histogram = HistogramJSON{LoMs: 0, HiMs: 400, BinWidthMs: 10,
		Counts: make([]int, 40), Under: 1, Over: 2}
	for i := 0; i <= 40; i++ {
		r.CDF.AtMs = append(r.CDF.AtMs, float64(i)*10)
		r.CDF.P = append(r.CDF.P, 1/(1+math.Exp(-f(i)/50)))
	}
	jsonBody, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	binBody := EncodeLatencyBinary(&r)
	if len(binBody) >= len(jsonBody) {
		t.Errorf("binary body (%d bytes) not smaller than JSON (%d bytes) on full-precision data",
			len(binBody), len(jsonBody))
	}
}

// TestPreMarshaledBodiesMatchHandler pins the publish-time marshaling
// refactor: the body the handler writes is byte-identical to marshaling
// Entry.Response() on demand — exactly what the server did per-request
// before bodies moved to build time.
func TestPreMarshaledBodiesMatchHandler(t *testing.T) {
	s := testServer(t)
	for _, e := range fixtureEntries(t) {
		onDemand, err := json.Marshal(e.Response())
		if err != nil {
			t.Fatalf("%s: marshal: %v", e.Key, err)
		}
		if string(onDemand) != string(e.BodyJSON()) {
			t.Fatalf("%s: pre-marshaled body differs from on-demand marshal", e.Key)
		}
	}
	// And through the HTTP layer.
	w := do(t, s, "/v1/latency?location="+milanKey+"&game=Fortnite")
	e, ok := s.Index().Get(milanKey + "::fortnite")
	if !ok {
		t.Fatal("fixture entry missing")
	}
	if w.Body.String() != string(e.BodyJSON()) {
		t.Error("handler body differs from pre-marshaled entry body")
	}
}
