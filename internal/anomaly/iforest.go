package anomaly

import (
	"math"
	"math/rand"
	"sort"
)

// IForest is the isolation-based detector of Liu et al.: points that random
// axis-parallel splits isolate quickly are anomalous. Instead of a fixed
// contamination threshold (which App. J found to produce many false
// anomalies), the score cut-off is the Tukey outlier fence over the scores
// with parameter KIQR (App. J varies it from 0.5 to 2.0).
type IForest struct {
	Trees      int
	SampleSize int
	// KIQR is the inter-quartile-range multiplier for the score cut-off.
	KIQR float64
	// Seed makes the forest deterministic.
	Seed int64
}

// Name implements Detector.
func (f *IForest) Name() string { return "iForests" }

// iNode is one node of an isolation tree over 1-D values.
type iNode struct {
	split       float64
	left, right *iNode
	size        int // leaf size
}

// c is the average path length of an unsuccessful BST search (standard
// isolation-forest normalization term).
func c(n int) float64 {
	if n <= 1 {
		return 0
	}
	h := math.Log(float64(n-1)) + 0.5772156649
	return 2*h - 2*float64(n-1)/float64(n)
}

func buildTree(vals []float64, depth, maxDepth int, r *rand.Rand) *iNode {
	if len(vals) <= 1 || depth >= maxDepth {
		return &iNode{size: len(vals)}
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		return &iNode{size: len(vals)}
	}
	split := lo + r.Float64()*(hi-lo)
	var left, right []float64
	for _, v := range vals {
		if v < split {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	return &iNode{
		split: split,
		left:  buildTree(left, depth+1, maxDepth, r),
		right: buildTree(right, depth+1, maxDepth, r),
	}
}

func pathLength(node *iNode, v float64, depth int) float64 {
	if node.left == nil {
		return float64(depth) + c(node.size)
	}
	if v < node.split {
		return pathLength(node.left, v, depth+1)
	}
	return pathLength(node.right, v, depth+1)
}

// Scores returns the anomaly score in [0, 1] for each point (higher is more
// anomalous).
func (f *IForest) Scores(values []float64) []float64 {
	n := len(values)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	trees := f.Trees
	if trees <= 0 {
		trees = 100
	}
	sample := f.SampleSize
	if sample <= 0 || sample > n {
		sample = 256
		if sample > n {
			sample = n
		}
	}
	r := rand.New(rand.NewSource(f.Seed + 1))
	maxDepth := int(math.Ceil(math.Log2(float64(sample)))) + 1
	forest := make([]*iNode, trees)
	buf := make([]float64, sample)
	for t := 0; t < trees; t++ {
		for i := range buf {
			buf[i] = values[r.Intn(n)]
		}
		forest[t] = buildTree(buf, 0, maxDepth, r)
	}
	cn := c(sample)
	if cn == 0 {
		cn = 1
	}
	for i, v := range values {
		sum := 0.0
		for _, tree := range forest {
			sum += pathLength(tree, v, 0)
		}
		mean := sum / float64(trees)
		out[i] = math.Pow(2, -mean/cn)
	}
	return out
}

// Detect implements Detector: scores above the Tukey fence
// Q3 + KIQR*(Q3-Q1) are anomalies.
func (f *IForest) Detect(values []float64) []bool {
	n := len(values)
	mask := make([]bool, n)
	if n < 4 {
		return mask
	}
	scores := f.Scores(values)
	sortedScores := append([]float64(nil), scores...)
	sort.Float64s(sortedScores)
	q1 := quantileSorted(sortedScores, 0.25)
	q3 := quantileSorted(sortedScores, 0.75)
	k := f.KIQR
	if k <= 0 {
		k = 1.5
	}
	fence := q3 + k*(q3-q1)
	for i, s := range scores {
		if s > fence {
			mask[i] = true
		}
	}
	return mask
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := q * float64(n-1)
	lo := int(rank)
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
