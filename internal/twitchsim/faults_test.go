package twitchsim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"
)

func TestFaultInjectorDeterministic(t *testing.T) {
	opt := DefaultFaultOptions(7)
	a := newFaultInjector(opt)
	b := newFaultInjector(opt)
	other := newFaultInjector(DefaultFaultOptions(8))

	differs := false
	for i := 0; i < 50; i++ {
		uri := fmt.Sprintf("/thumb/s%d-320x180.pgm", i%5)
		da := a.decide(opt.CDN, uri, true)
		db := b.decide(opt.CDN, uri, true)
		if da != db {
			t.Fatalf("same seed diverged at %s #%d: %+v vs %+v", uri, i, da, db)
		}
		if da != other.decide(opt.CDN, uri, true) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical 50-decision schedules")
	}
}

func TestFaultRollUniform(t *testing.T) {
	fi := newFaultInjector(FaultOptions{Seed: 3})
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := fi.roll("500", "/thumb/x.pgm", uint64(i))
		if v < 0 || v >= 1 {
			t.Fatalf("roll out of [0,1): %v", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.47 || mean > 0.53 {
		t.Fatalf("roll mean %v, want ~0.5", mean)
	}
}

func TestScaledFaults(t *testing.T) {
	if ScaledFaults(1, 0).Enabled() {
		t.Fatal("rate 0 should disable every fault")
	}
	f := ScaledFaults(1, 100)
	for name, p := range map[string]float64{
		"api_err":  f.API.ErrProb,
		"cdn_err":  f.CDN.ErrProb,
		"truncate": f.TruncateProb,
		"corrupt":  f.CorruptProb,
	} {
		if p != 0.9 {
			t.Fatalf("%s = %v, want clamp to 0.9", name, p)
		}
	}
	if !f.Enabled() {
		t.Fatal("scaled mix should be enabled")
	}
}

// liveThumbURL finds a live streamer's thumbnail URL on a busy platform.
func liveThumbURL(t *testing.T, p *Platform) string {
	t.Helper()
	var resp struct {
		Data []StreamInfo `json:"data"`
	}
	getJSON(t, p.URL()+"/helix/streams?first=100", &resp)
	if len(resp.Data) == 0 {
		t.Skip("nobody live")
	}
	return resp.Data[0].ThumbnailURL
}

// outcome is a comparable signature of one faulted GET.
type outcome struct {
	transportErr bool
	status       int
	bodyLen      int
	hasSeq       bool
	hasNext      bool
	digestOK     bool
}

func observe(client *http.Client, url string) outcome {
	resp, err := client.Get(url)
	if err != nil {
		return outcome{transportErr: true}
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	o := outcome{
		status:  resp.StatusCode,
		bodyLen: len(body),
		hasSeq:  resp.Header.Get("X-Thumbnail-Seq") != "",
		hasNext: resp.Header.Get("X-Next-Thumbnail") != "",
	}
	if want := resp.Header.Get("X-Thumbnail-Digest"); want != "" {
		sum := sha256.Sum256(body)
		o.digestOK = hex.EncodeToString(sum[:]) == want
	}
	return o
}

func TestFaultScheduleReplays(t *testing.T) {
	run := func() []outcome {
		p, _ := testPlatform(t, 150)
		p.Advance(25 * time.Hour)
		p.SetFaults(ScaledFaults(5, 1))
		url := liveThumbURL(t, p)
		client := &http.Client{Timeout: 2 * time.Second}
		var outs []outcome
		for i := 0; i < 60; i++ {
			outs = append(outs, observe(client, url))
		}
		if p.FaultsInjected == 0 {
			t.Fatal("no faults injected at rate 1 over 60 requests")
		}
		return outs
	}
	a := run()
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault schedule diverged at request %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestBodyFaultsDetectable(t *testing.T) {
	p, _ := testPlatform(t, 150)
	p.Advance(25 * time.Hour)
	url := liveThumbURL(t, p)

	// Truncation: body shorter than the declared Content-Length.
	p.SetFaults(FaultOptions{Seed: 1, TruncateProb: 1})
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	declared, _ := strconv.Atoi(resp.Header.Get("Content-Length"))
	if readErr == nil && len(body) >= declared {
		t.Fatalf("truncation invisible: got %d bytes of declared %d, read err %v",
			len(body), declared, readErr)
	}

	// Corruption: body contradicts X-Thumbnail-Digest.
	p.SetFaults(FaultOptions{Seed: 1, CorruptProb: 1})
	if o := observe(http.DefaultClient, url); o.digestOK {
		t.Fatal("corrupted body still matches its digest")
	}
	// Fault-free for contrast: digest must verify.
	p.SetFaults(FaultOptions{})
	if o := observe(http.DefaultClient, url); !o.digestOK {
		t.Fatal("clean body fails its digest")
	}

	// Header drops.
	p.SetFaults(FaultOptions{Seed: 1, DropSeqProb: 1, DropNextProb: 1})
	if o := observe(http.DefaultClient, url); o.hasSeq || o.hasNext {
		t.Fatalf("headers survived drop faults: %+v", o)
	}
}

func TestFaultsSpareControlRoutes(t *testing.T) {
	p, _ := testPlatform(t, 40)
	p.Advance(25 * time.Hour)
	f := FaultOptions{
		Seed: 1,
		API:  RouteFaults{ErrProb: 0.9},
		CDN:  RouteFaults{ErrProb: 0.9},
	}
	p.SetFaults(f)
	// The offline sentinel and the social pages must stay reliable: the
	// download and location modules treat them as ground truth.
	for i := 0; i < 30; i++ {
		for _, path := range []string{"/offline.pgm", "/twitter/tw0000001"} {
			resp, err := http.Get(p.URL() + path)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			resp.Body.Close()
			if resp.StatusCode >= 500 {
				t.Fatalf("%s faulted with %d", path, resp.StatusCode)
			}
		}
	}
	// Sanity: the API route at 0.9 does fault.
	hit := false
	for i := 0; i < 30 && !hit; i++ {
		resp, err := http.Get(p.URL() + "/helix/streams?first=1")
		if err != nil {
			continue
		}
		resp.Body.Close()
		hit = resp.StatusCode == http.StatusInternalServerError
	}
	if !hit {
		t.Fatal("API route never faulted at ErrProb 0.9")
	}
}
